package mmu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lcg"
)

func TestFragmentLayoutCoversAllElements(t *testing.T) {
	var seenA, seenB [M * K]bool
	var seenC [M * N]bool
	for lane := 0; lane < WarpSize; lane++ {
		ar, ac := AElement(lane)
		if ar < 0 || ar >= M || ac < 0 || ac >= K {
			t.Fatalf("lane %d: A element (%d,%d) out of range", lane, ar, ac)
		}
		if seenA[ar*K+ac] {
			t.Fatalf("lane %d: duplicate A element (%d,%d)", lane, ar, ac)
		}
		seenA[ar*K+ac] = true

		br, bc := BElement(lane)
		if seenB[br*N+bc] {
			t.Fatalf("lane %d: duplicate B element (%d,%d)", lane, br, bc)
		}
		seenB[br*N+bc] = true

		cr, c0, c1 := CElements(lane)
		for _, cc := range []int{c0, c1} {
			if seenC[cr*N+cc] {
				t.Fatalf("lane %d: duplicate C element (%d,%d)", lane, cr, cc)
			}
			seenC[cr*N+cc] = true
		}
	}
	for i, ok := range seenA {
		if !ok {
			t.Fatalf("A element %d unowned", i)
		}
	}
	for i, ok := range seenC {
		if !ok {
			t.Fatalf("C element %d unowned", i)
		}
	}
}

func TestFragmentLoadStoreRoundTrip(t *testing.T) {
	g := lcg.New(1)
	aT := make([]float64, M*K)
	bT := make([]float64, K*N)
	cT := make([]float64, M*N)
	g.Fill(aT)
	g.Fill(bT)
	g.Fill(cT)

	var fa FragA
	var fb FragB
	var fc FragC
	fa.Load(aT)
	fb.Load(bT)
	fc.Load(cT)

	out := make([]float64, M*N)
	fc.Store(out)
	for i := range cT {
		if out[i] != cT[i] {
			t.Fatalf("C round trip failed at %d: %v != %v", i, out[i], cT[i])
		}
	}
	// Check a few known fragment positions.
	if fa[0] != aT[0] { // lane 0 owns A(0,0)
		t.Fatal("lane 0 does not own A(0,0)")
	}
	if fa[5] != aT[1*K+1] { // lane 5 owns A(1,1)
		t.Fatal("lane 5 does not own A(1,1)")
	}
	if fb[5] != bT[1*N+1] { // lane 5 owns B(1,1)
		t.Fatal("lane 5 does not own B(1,1)")
	}
}

func TestDMMATileMatchesWarp(t *testing.T) {
	g := lcg.New(77)
	for trial := 0; trial < 50; trial++ {
		aT := make([]float64, M*K)
		bT := make([]float64, K*N)
		cT := make([]float64, M*N)
		g.Fill(aT)
		g.Fill(bT)
		g.Fill(cT)

		var fa FragA
		var fb FragB
		var fc FragC
		fa.Load(aT)
		fb.Load(bT)
		fc.Load(cT)
		DMMAWarp(&fc, &fc, &fa, &fb)
		warpOut := make([]float64, M*N)
		fc.Store(warpOut)

		tileOut := append([]float64(nil), cT...)
		DMMATile(tileOut, aT, bT)

		for i := range warpOut {
			if warpOut[i] != tileOut[i] {
				t.Fatalf("trial %d: warp and tile paths differ at %d: %v vs %v",
					trial, i, warpOut[i], tileOut[i])
			}
		}
	}
}

func TestDMMACorrectness(t *testing.T) {
	// Against a naive reference within a small tolerance (order differs, so
	// exact equality is not expected — but for k=4 products of (-2,2) values
	// the result is within a few ULPs).
	g := lcg.New(3)
	aT := make([]float64, M*K)
	bT := make([]float64, K*N)
	cT := make([]float64, M*N)
	g.Fill(aT)
	g.Fill(bT)
	g.Fill(cT)

	got := append([]float64(nil), cT...)
	DMMATile(got, aT, bT)

	for i := 0; i < M; i++ {
		for j := 0; j < N; j++ {
			want := cT[i*N+j]
			for k := 0; k < K; k++ {
				want += aT[i*K+k] * bT[k*N+j]
			}
			if math.Abs(got[i*N+j]-want) > 1e-13 {
				t.Fatalf("C(%d,%d) = %v, want ≈%v", i, j, got[i*N+j], want)
			}
		}
	}
}

func TestDMMAIdentity(t *testing.T) {
	// A = I₈ₓ₄ (top 4×4 identity) times B leaves B's rows in C's top rows.
	a := make([]float64, M*K)
	for k := 0; k < K; k++ {
		a[k*K+k] = 1
	}
	b := make([]float64, K*N)
	g := lcg.New(9)
	g.Fill(b)
	c := make([]float64, M*N)
	DMMATile(c, a, b)
	for i := 0; i < K; i++ {
		for j := 0; j < N; j++ {
			if c[i*N+j] != b[i*N+j] {
				t.Fatalf("identity MMA wrong at (%d,%d)", i, j)
			}
		}
	}
	for i := K; i < M; i++ {
		for j := 0; j < N; j++ {
			if c[i*N+j] != 0 {
				t.Fatalf("row %d should be zero", i)
			}
		}
	}
}

func TestVectorDMMAIdenticalToTensor(t *testing.T) {
	// The CC replacement must be bit-identical to the TC path (Table 6).
	f := func(seed int64) bool {
		g := lcg.New(seed)
		aT := make([]float64, M*K)
		bT := make([]float64, K*N)
		cT := make([]float64, M*N)
		g.Fill(aT)
		g.Fill(bT)
		g.Fill(cT)
		tc := append([]float64(nil), cT...)
		cc := append([]float64(nil), cT...)
		DMMATile(tc, aT, bT)
		VectorDMMATile(cc, aT, bT)
		for i := range tc {
			if tc[i] != cc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDMMAAccumulationOrderDiffersFromReverse(t *testing.T) {
	// Sanity: the fixed k-ascending FMA chain is a *specific* order — a
	// reversed-order accumulation gives (at least sometimes) different bits.
	// This is the mechanism behind baseline-vs-TC error differences.
	g := lcg.New(2024)
	diff := false
	for trial := 0; trial < 200 && !diff; trial++ {
		aT := make([]float64, M*K)
		bT := make([]float64, K*N)
		g.Fill(aT)
		g.Fill(bT)
		fwd := make([]float64, M*N)
		DMMATile(fwd, aT, bT)
		for i := 0; i < M && !diff; i++ {
			for j := 0; j < N && !diff; j++ {
				acc := 0.0
				for k := K - 1; k >= 0; k-- {
					acc = math.FMA(aT[i*K+k], bT[k*N+j], acc)
				}
				if acc != fwd[i*N+j] {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Fatal("forward and reverse accumulation never differed in 200 trials")
	}
}

func TestFragCZero(t *testing.T) {
	var fc FragC
	for i := range fc {
		fc[i] = 1
	}
	fc.Zero()
	for i, v := range fc {
		if v != 0 {
			t.Fatalf("element %d not cleared", i)
		}
	}
}

func TestBMMAAndPopc(t *testing.T) {
	var a BitFragA
	var b BitFragB
	var c BitFragC
	// Row 2 of A has bits {0, 64, 127}; column 5 of B has bits {64, 127, 3}.
	a.SetBit(2, 0)
	a.SetBit(2, 64)
	a.SetBit(2, 127)
	b.SetBit(64, 5)
	b.SetBit(127, 5)
	b.SetBit(3, 5)
	BMMAAndPopc(&c, &a, &b)
	if c[2*BitN+5] != 2 {
		t.Fatalf("c[2][5] = %d, want 2", c[2*BitN+5])
	}
	for i := range c {
		if i != 2*BitN+5 && c[i] != 0 {
			t.Fatalf("unexpected nonzero at %d", i)
		}
	}
	// Accumulation.
	BMMAAndPopc(&c, &a, &b)
	if c[2*BitN+5] != 4 {
		t.Fatalf("accumulated c[2][5] = %d, want 4", c[2*BitN+5])
	}
}

func TestBitFragBits(t *testing.T) {
	var a BitFragA
	a.SetBit(7, 127)
	if !a.Bit(7, 127) || a.Bit(7, 126) || a.Bit(6, 127) {
		t.Fatal("BitFragA bit accessors wrong")
	}
	var b BitFragB
	b.SetBit(127, 7)
	if !b.Bit(127, 7) || b.Bit(126, 7) || b.Bit(127, 6) {
		t.Fatal("BitFragB bit accessors wrong")
	}
}

func TestBMMAFullOnes(t *testing.T) {
	var a BitFragA
	var b BitFragB
	var c BitFragC
	for r := 0; r < BitM; r++ {
		for w := 0; w < BitWordsPerRow; w++ {
			a[r][w] = ^uint64(0)
		}
	}
	for col := 0; col < BitN; col++ {
		for w := 0; w < BitWordsPerRow; w++ {
			b[col][w] = ^uint64(0)
		}
	}
	BMMAAndPopc(&c, &a, &b)
	for i, v := range c {
		if v != BitK {
			t.Fatalf("c[%d] = %d, want %d", i, v, BitK)
		}
	}
}

func BenchmarkDMMATile(b *testing.B) {
	g := lcg.New(1)
	aT := make([]float64, M*K)
	bT := make([]float64, K*N)
	cT := make([]float64, M*N)
	g.Fill(aT)
	g.Fill(bT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DMMATile(cT, aT, bT)
	}
}

func BenchmarkBMMAAndPopc(b *testing.B) {
	var a BitFragA
	var bb BitFragB
	var c BitFragC
	for r := 0; r < BitM; r++ {
		a[r][0] = 0xdeadbeefcafebabe
		a[r][1] = 0x0123456789abcdef
	}
	for col := 0; col < BitN; col++ {
		bb[col][0] = 0xffffffff00000000
		bb[col][1] = 0x00000000ffffffff
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BMMAAndPopc(&c, &a, &bb)
	}
}
