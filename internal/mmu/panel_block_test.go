package mmu

import (
	"math"
	"testing"
)

// TestDMMAPanelBlockDepths pins the blocking-depth knob bit-invisible: every
// depth (single-tile, paired, quad) runs the identical per-element
// ascending-k FMA chain, so DMMAPanel matches the tile-at-a-time loop
// bitwise for every kTiles in 0..17 at every depth — including sweeps that
// mix quad, pair, and remainder steps.
func TestDMMAPanelBlockDepths(t *testing.T) {
	setPanel(t, true)
	for _, depth := range []int{1, 2, 4} {
		prev := SetPanelBlock(depth)
		for kTiles := 0; kTiles <= 17; kTiles++ {
			c, aPanel, bPanel := randomPanels(int64(depth*100+kTiles), kTiles)
			want := append([]float64(nil), c...)
			for kt := 0; kt < kTiles; kt++ {
				DMMATile(want, aPanel[kt*M*K:(kt+1)*M*K], bPanel[kt*K*N:(kt+1)*K*N])
			}
			got := append([]float64(nil), c...)
			DMMAPanel(got, aPanel, bPanel, kTiles)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("depth=%d kTiles=%d: element %d differs: %v != %v",
						depth, kTiles, i, got[i], want[i])
				}
			}
		}
		SetPanelBlock(prev)
	}
}

// TestSetPanelBlock checks the knob round-trips, reports the previous depth,
// and snaps out-of-range values to the supported {1, 2, 4} set.
func TestSetPanelBlock(t *testing.T) {
	orig := PanelBlock()
	defer SetPanelBlock(orig)
	if prev := SetPanelBlock(4); prev != orig {
		t.Fatalf("SetPanelBlock returned %d, want %d", prev, orig)
	}
	if PanelBlock() != 4 {
		t.Fatal("depth not applied")
	}
	for in, want := range map[int]int{-1: 1, 0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 9: 4} {
		SetPanelBlock(in)
		if PanelBlock() != want {
			t.Fatalf("SetPanelBlock(%d) stored %d, want %d", in, PanelBlock(), want)
		}
	}
}
