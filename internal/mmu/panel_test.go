package mmu

import (
	"testing"

	"repro/internal/lcg"
)

// setPanel flips the panel fast paths for one test and restores the previous
// state on cleanup.
func setPanel(t *testing.T, on bool) {
	t.Helper()
	was := SetPanelEnabled(on)
	t.Cleanup(func() { SetPanelEnabled(was) })
}

// randomPanels builds kTiles packed A and B tiles plus a random accumulator.
func randomPanels(seed int64, kTiles int) (c, aPanel, bPanel []float64) {
	g := lcg.New(seed)
	c = make([]float64, M*N)
	aPanel = make([]float64, kTiles*M*K)
	bPanel = make([]float64, kTiles*K*N)
	g.Fill(c)
	g.Fill(aPanel)
	g.Fill(bPanel)
	return c, aPanel, bPanel
}

// TestDMMAPanelMatchesTileLoop pins the fused k-sweep bit-identical to the
// ascending loop of tile-at-a-time MMAs for every kTiles in 0..17 (covering
// the empty sweep, the single-tile fast path, and long even/odd sweeps).
func TestDMMAPanelMatchesTileLoop(t *testing.T) {
	setPanel(t, true)
	for kTiles := 0; kTiles <= 17; kTiles++ {
		c, aPanel, bPanel := randomPanels(int64(kTiles)+1, kTiles)
		want := append([]float64(nil), c...)
		for kt := 0; kt < kTiles; kt++ {
			DMMATile(want, aPanel[kt*M*K:(kt+1)*M*K], bPanel[kt*K*N:(kt+1)*K*N])
		}
		got := append([]float64(nil), c...)
		DMMAPanel(got, aPanel, bPanel, kTiles)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kTiles=%d: element %d differs: %v != %v", kTiles, i, got[i], want[i])
			}
		}
	}
}

// TestDMMAPanelDisabledMatchesEnabled pins the CUBIE_NO_PANEL reference path
// bit-identical to the fused fast path.
func TestDMMAPanelDisabledMatchesEnabled(t *testing.T) {
	for kTiles := 0; kTiles <= 9; kTiles++ {
		c, aPanel, bPanel := randomPanels(int64(kTiles)+77, kTiles)

		setPanel(t, true)
		fast := append([]float64(nil), c...)
		DMMAPanel(fast, aPanel, bPanel, kTiles)

		setPanel(t, false)
		slow := append([]float64(nil), c...)
		DMMAPanel(slow, aPanel, bPanel, kTiles)

		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("kTiles=%d: element %d differs: %v != %v", kTiles, i, fast[i], slow[i])
			}
		}
	}
}

// TestDMMAPanelMatchesWarpFragments cross-checks the panel sweep against the
// explicit warp-register fragment path (DMMAWarp), the PTX-layout ground
// truth of the MMA semantics.
func TestDMMAPanelMatchesWarpFragments(t *testing.T) {
	setPanel(t, true)
	const kTiles = 5
	c, aPanel, bPanel := randomPanels(31, kTiles)

	var fc FragC
	fc.Load(c)
	for kt := 0; kt < kTiles; kt++ {
		var fa FragA
		var fb FragB
		fa.Load(aPanel[kt*M*K : (kt+1)*M*K])
		fb.Load(bPanel[kt*K*N : (kt+1)*K*N])
		DMMAWarp(&fc, &fc, &fa, &fb)
	}
	want := make([]float64, M*N)
	fc.Store(want)

	got := append([]float64(nil), c...)
	DMMAPanel(got, aPanel, bPanel, kTiles)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d differs: %v != %v", i, got[i], want[i])
		}
	}
}

// TestDMMAPanelPairMatchesTileLoop pins the double-buffered sweep to the
// alternating even/odd DMMATile loop of the cudaSample GEMM.
func TestDMMAPanelPairMatchesTileLoop(t *testing.T) {
	setPanel(t, true)
	for kTiles := 0; kTiles <= 17; kTiles++ {
		_, aPanel, bPanel := randomPanels(int64(kTiles)+1000, kTiles)
		wantE := make([]float64, M*N)
		wantO := make([]float64, M*N)
		for kt := 0; kt < kTiles; kt++ {
			dst := wantE
			if kt%2 == 1 {
				dst = wantO
			}
			DMMATile(dst, aPanel[kt*M*K:(kt+1)*M*K], bPanel[kt*K*N:(kt+1)*K*N])
		}
		gotE := make([]float64, M*N)
		gotO := make([]float64, M*N)
		DMMAPanelPair(gotE, gotO, aPanel, bPanel, kTiles)
		for i := range wantE {
			if gotE[i] != wantE[i] || gotO[i] != wantO[i] {
				t.Fatalf("kTiles=%d: element %d differs", kTiles, i)
			}
		}
	}
}

// TestDMMABatchMatchesTileLoop pins the batched independent products to the
// per-product DMMATile results.
func TestDMMABatchMatchesTileLoop(t *testing.T) {
	setPanel(t, true)
	for _, n := range []int{0, 1, 2, 7, 16} {
		g := lcg.New(int64(n) + 5)
		cPanel := make([]float64, n*M*N)
		aPanel := make([]float64, n*M*K)
		bPanel := make([]float64, n*K*N)
		g.Fill(cPanel)
		g.Fill(aPanel)
		g.Fill(bPanel)
		want := append([]float64(nil), cPanel...)
		for i := 0; i < n; i++ {
			DMMATile(want[i*M*N:(i+1)*M*N], aPanel[i*M*K:(i+1)*M*K], bPanel[i*K*N:(i+1)*K*N])
		}
		got := append([]float64(nil), cPanel...)
		DMMABatch(got, aPanel, bPanel, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: element %d differs: %v != %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestPackA pins the panel-layout shim: tile t of the destination must hold
// columns 4t..4t+3 of the leading 8 source rows.
func TestPackA(t *testing.T) {
	const stride, kTiles = 12, 3
	src := make([]float64, M*stride)
	for i := range src {
		src[i] = float64(i)
	}
	dst := make([]float64, kTiles*M*K)
	PackA(dst, src, stride, kTiles)
	for kt := 0; kt < kTiles; kt++ {
		for r := 0; r < M; r++ {
			for c := 0; c < K; c++ {
				want := src[r*stride+kt*K+c]
				if got := dst[kt*M*K+r*K+c]; got != want {
					t.Fatalf("tile %d (%d,%d): %v != %v", kt, r, c, got, want)
				}
			}
		}
	}
}

// bmmaInputs builds a deterministic run of bit blocks, segment ids, and a
// frontier with a mix of hit, miss, and out-of-range segments.
func bmmaInputs(nBlocks int) (frags []BitFragA, colSegs []int32, frontier []uint64) {
	g := lcg.New(int64(nBlocks) * 7)
	word := func() uint64 { return uint64(g.Next())<<32 ^ uint64(g.Next()) }
	frags = make([]BitFragA, nBlocks)
	colSegs = make([]int32, nBlocks)
	frontier = make([]uint64, 9) // 4.5 segments: seg 4 is half-length
	for i := range frontier {
		if i%3 != 2 { // leave every third word zero so some segments miss
			frontier[i] = word()
		}
	}
	for i := range frags {
		for r := 0; r < BitM; r++ {
			frags[i][r][0] = word()
			frags[i][r][1] = word()
		}
		colSegs[i] = int32(i % 6) // includes segment 5: fully out of range
	}
	return frags, colSegs, frontier
}

// TestBMMAPanelMatchesAndPopc pins the word-batched pull sweep to the
// broadcast-B BMMAAndPopc loop: same row hits, same executed count.
func TestBMMAPanelMatchesAndPopc(t *testing.T) {
	setPanel(t, true)
	frags, colSegs, frontier := bmmaInputs(13)

	var want [BitM]int32
	wantExec := 0
	var b BitFragB
	var c BitFragC
	for i := range frags {
		base := int(colSegs[i]) * BitWordsPerRow
		var seg0, seg1 uint64
		if base < len(frontier) {
			seg0 = frontier[base]
		}
		if base+1 < len(frontier) {
			seg1 = frontier[base+1]
		}
		if seg0 == 0 && seg1 == 0 {
			continue
		}
		wantExec++
		for col := 0; col < BitN; col++ {
			b[col][0], b[col][1] = seg0, seg1
		}
		for j := range c {
			c[j] = 0
		}
		BMMAAndPopc(&c, &frags[i], &b)
		for r := 0; r < BitM; r++ {
			want[r] += c[r*BitN]
		}
	}

	var got [BitM]int32
	exec := BMMAPanel(&got, frags, colSegs, frontier)
	if exec != wantExec {
		t.Fatalf("executed %d MMAs, want %d", exec, wantExec)
	}
	if got != want {
		t.Fatalf("row hits %v != %v", got, want)
	}

	// The CUBIE_NO_PANEL reference path must agree too.
	setPanel(t, false)
	var slow [BitM]int32
	if exec := BMMAPanel(&slow, frags, colSegs, frontier); exec != wantExec {
		t.Fatalf("disabled path executed %d MMAs, want %d", exec, wantExec)
	}
	if slow != want {
		t.Fatalf("disabled path row hits %v != %v", slow, want)
	}
}

// TestDMMAPanelShortOperandsPanic pins the early panics on short panels.
func TestDMMAPanelShortOperandsPanic(t *testing.T) {
	c := make([]float64, M*N)
	short := make([]float64, M*K) // one tile
	b := make([]float64, 2*K*N)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short A panel")
		}
	}()
	DMMAPanel(c, short, b, 2)
}

// TestPanelFastPathsAllocFree pins the panel engine's hot paths to zero heap
// allocations: the accumulator residency must come from locals, not escapes.
func TestPanelFastPathsAllocFree(t *testing.T) {
	setPanel(t, true)
	const kTiles = 8
	c, aPanel, bPanel := randomPanels(99, kTiles)
	cOdd := make([]float64, M*N)
	if n := testing.AllocsPerRun(100, func() {
		DMMAPanel(c, aPanel, bPanel, kTiles)
	}); n != 0 {
		t.Fatalf("DMMAPanel allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		DMMAPanelPair(c, cOdd, aPanel, bPanel, kTiles)
	}); n != 0 {
		t.Fatalf("DMMAPanelPair allocates %v times per call", n)
	}
	cBatch := make([]float64, 2*M*N)
	if n := testing.AllocsPerRun(100, func() {
		DMMABatch(cBatch, aPanel, bPanel, 2)
	}); n != 0 {
		t.Fatalf("DMMABatch allocates %v times per call", n)
	}
	frags, colSegs, frontier := bmmaInputs(9)
	var hits [BitM]int32
	if n := testing.AllocsPerRun(100, func() {
		BMMAPanel(&hits, frags, colSegs, frontier)
	}); n != 0 {
		t.Fatalf("BMMAPanel allocates %v times per call", n)
	}
}

func BenchmarkDMMAPanel8(b *testing.B) {
	c, aPanel, bPanel := randomPanels(1, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DMMAPanel(c, aPanel, bPanel, 8)
	}
}

func BenchmarkDMMATileLoop8(b *testing.B) {
	c, aPanel, bPanel := randomPanels(1, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for kt := 0; kt < 8; kt++ {
			DMMATile(c, aPanel[kt*M*K:(kt+1)*M*K], bPanel[kt*K*N:(kt+1)*K*N])
		}
	}
}
