package mmu

import (
	"math/bits"
	"unsafe"
)

// Shapes of the single-bit m8n8k128 MMA.
const (
	BitM = 8   // rows of A and C
	BitN = 8   // cols of B and C
	BitK = 128 // bit depth: cols of A, rows of B

	// BitWordsPerRow is the number of uint64 words storing one 128-bit row.
	BitWordsPerRow = BitK / 64

	// OpsPerBMMA counts the logical bit operations of one b1 MMA
	// (an AND and a population-count contribution per bit position).
	OpsPerBMMA = 2 * BitM * BitN * BitK
)

// BitFragA is an 8×128 single-bit A operand: 8 rows × 2 uint64 words.
// Bit k of row r is bit (k%64) of word A[r][k/64].
type BitFragA [BitM][BitWordsPerRow]uint64

// BitFragB is a 128×8 single-bit B operand stored column-major: 8 columns ×
// 2 uint64 words, so each column is a 128-bit vector aligned with A's rows.
type BitFragB [BitN][BitWordsPerRow]uint64

// BitFragC is the 8×8 int32 accumulator of the b1 MMA.
type BitFragC [BitM * BitN]int32

// BMMAAndPopc executes mma.m8n8k128 with the AND+POPC operation:
// c[i][j] += popcount(Arow_i AND Bcol_j). This is the bit-MMA BerryBees uses
// to intersect frontier bitmaps with adjacency bitmap slices.
func BMMAAndPopc(c *BitFragC, a *BitFragA, b *BitFragB) {
	metBMMAOps.IncAt(hintOf(unsafe.Pointer(c)))
	for i := 0; i < BitM; i++ {
		for j := 0; j < BitN; j++ {
			var p int
			for w := 0; w < BitWordsPerRow; w++ {
				p += bits.OnesCount64(a[i][w] & b[j][w])
			}
			c[i*BitN+j] += int32(p)
		}
	}
}

// SetBit sets bit k of row r in the A fragment.
func (a *BitFragA) SetBit(r, k int) { a[r][k/64] |= 1 << (k % 64) }

// Bit reports bit k of row r.
func (a *BitFragA) Bit(r, k int) bool { return a[r][k/64]>>(k%64)&1 == 1 }

// SetBit sets bit k of column c in the B fragment.
func (b *BitFragB) SetBit(k, c int) { b[c][k/64] |= 1 << (k % 64) }

// Bit reports bit k of column c.
func (b *BitFragB) Bit(k, c int) bool { return b[c][k/64]>>(k%64)&1 == 1 }
