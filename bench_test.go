// Top-level benchmark harness: one benchmark per table and figure of the
// paper. Each benchmark regenerates its experiment's data through the
// harness and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The shared harness caches workload runs
// across benchmarks.
package repro

import (
	"math"
	"sync"
	"testing"

	"repro/cubie"
	"repro/internal/device"
	"repro/internal/harness"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchH    *harness.Harness
)

func sharedHarness() *harness.Harness {
	benchOnce.Do(func() { benchH = harness.New() })
	return benchH
}

// BenchmarkTable2SuiteConstruction measures suite instantiation (Table 2).
func BenchmarkTable2SuiteConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := cubie.NewSuite()
		if len(s.Workloads()) != 10 {
			b.Fatal("suite incomplete")
		}
	}
}

// BenchmarkFigure3 regenerates the absolute-performance grid, reporting the
// grid size and the mean TC throughput per device.
func BenchmarkFigure3(b *testing.B) {
	h := sharedHarness()
	var cells []harness.PerfCell
	var err error
	for i := 0; i < b.N; i++ {
		cells, err = h.Figure3(device.All())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cells)), "cells")
	for _, dev := range device.All() {
		var sum float64
		var n int
		for _, c := range cells {
			if c.Variant == workload.TC && c.Device == dev.Name {
				sum += c.Throughput
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "meanTCthroughput-"+dev.Name)
	}
}

func benchSpeedup(b *testing.B, f func([]device.Spec) ([]harness.SpeedupRow, error)) {
	var rows []harness.SpeedupRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = f(device.All())
		if err != nil {
			b.Fatal(err)
		}
	}
	byQ := map[int][]float64{}
	for _, r := range rows {
		byQ[r.Quadrant] = append(byQ[r.Quadrant], r.Speedup)
	}
	for q := 1; q <= 4; q++ {
		if len(byQ[q]) == 0 {
			continue
		}
		var logSum float64
		for _, s := range byQ[q] {
			logSum += math.Log(s)
		}
		b.ReportMetric(math.Exp(logSum/float64(len(byQ[q]))), "geomeanQ"+string(rune('0'+q)))
	}
}

// BenchmarkFigure4 regenerates the TC-vs-baseline speedups.
func BenchmarkFigure4(b *testing.B) { benchSpeedup(b, sharedHarness().Figure4) }

// BenchmarkFigure5 regenerates the CC-vs-TC speedups.
func BenchmarkFigure5(b *testing.B) { benchSpeedup(b, sharedHarness().Figure5) }

// BenchmarkFigure6 regenerates the CC-E-vs-TC speedups.
func BenchmarkFigure6(b *testing.B) { benchSpeedup(b, sharedHarness().Figure6) }

// BenchmarkFigure7 regenerates the EDP comparison on H200, reporting the
// per-quadrant geomean TC/baseline EDP ratios.
func BenchmarkFigure7(b *testing.B) {
	h := sharedHarness()
	var geo map[int]float64
	var err error
	for i := 0; i < b.N; i++ {
		_, geo, err = h.Figure7(device.H200())
		if err != nil {
			b.Fatal(err)
		}
	}
	for q := 1; q <= 4; q++ {
		b.ReportMetric((1-geo[q])*100, "EDPreduction%Q"+string(rune('0'+q)))
	}
}

// BenchmarkFigure8 regenerates the power traces on H200, reporting the peak
// TC power across the suite.
func BenchmarkFigure8(b *testing.B) {
	h := sharedHarness()
	var peak float64
	for i := 0; i < b.N; i++ {
		traces, err := h.Figure8(device.H200())
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, t := range traces {
			if t.Variant == string(workload.TC) && t.PeakPower() > peak {
				peak = t.PeakPower()
			}
		}
	}
	b.ReportMetric(peak, "peakTCwatts")
}

// BenchmarkTable6 regenerates the FP64 accuracy table, reporting the worst
// TC error and verifying TC ≡ CC.
func BenchmarkTable6(b *testing.B) {
	h := sharedHarness()
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := h.Table6()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if !r.TCEqualsCC {
				b.Fatalf("%s: TC and CC diverged", r.Workload)
			}
			if r.TCCC.Max > worst {
				worst = r.TCCC.Max
			}
		}
	}
	// Benchmark metrics print with fixed precision, so report the error's
	// negative log10 (e.g. 12.9 means 1.3e-13).
	b.ReportMetric(-math.Log10(worst), "worstTCerrNegLog10")
}

// BenchmarkFigure9 regenerates the cache-aware roofline on H200.
func BenchmarkFigure9(b *testing.B) {
	h := sharedHarness()
	var n int
	for i := 0; i < b.N; i++ {
		_, pts, err := h.Figure9(device.H200())
		if err != nil {
			b.Fatal(err)
		}
		n = len(pts)
	}
	b.ReportMetric(float64(n), "points")
}

// BenchmarkFigure10 regenerates the dataset-coverage PCA at reduced corpus
// size, reporting the representative-dispersion ratios.
func BenchmarkFigure10(b *testing.B) {
	var g, m *harness.CoverageReport
	var err error
	for i := 0; i < b.N; i++ {
		g, err = harness.Figure10Graphs(60, 1)
		if err != nil {
			b.Fatal(err)
		}
		m, err = harness.Figure10Matrices(60, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(g.DispersionSelected/g.DispersionNeighbors, "graphSpreadRatio")
	b.ReportMetric(m.DispersionSelected/m.DispersionNeighbors, "matrixSpreadRatio")
	b.ReportMetric(g.Coverage*100, "graphCoverage%")
}

// BenchmarkFigure11 regenerates the suite-comparison PCA, reporting each
// suite's dispersion (Observation 9: Cubie widest).
func BenchmarkFigure11(b *testing.B) {
	h := sharedHarness()
	var disp map[string]float64
	var err error
	for i := 0; i < b.N; i++ {
		_, disp, err = h.Figure11(device.H200())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(disp["Cubie"], "dispCubie")
	b.ReportMetric(disp["Rodinia"], "dispRodinia")
	b.ReportMetric(disp["SHOC"], "dispSHOC")
}

// BenchmarkFigure12 regenerates the peak-throughput series.
func BenchmarkFigure12(b *testing.B) {
	var peaks []device.PeakEntry
	for i := 0; i < b.N; i++ {
		peaks = device.Figure12Peaks()
	}
	for _, p := range peaks {
		if p.Precision == "FP64" && p.Unit == "TensorCore" {
			b.ReportMetric(p.TFLOPS, "fp64tc-"+p.GPU)
		}
	}
}

// BenchmarkTable7 regenerates the dwarf-coverage comparison.
func BenchmarkTable7(b *testing.B) {
	var covered int
	for i := 0; i < b.N; i++ {
		covered = cubie.NewSuite().DwarfsCovered()
	}
	b.ReportMetric(float64(covered), "dwarfs")
}

// BenchmarkAblations runs the design-choice ablation studies, reporting the
// headline ratios.
func BenchmarkAblations(b *testing.B) {
	h := sharedHarness()
	var overlapGeo, daspGeo float64
	for i := 0; i < b.N; i++ {
		ov, err := h.AblateOverlap(device.H200())
		if err != nil {
			b.Fatal(err)
		}
		var logSum float64
		for _, r := range ov {
			logSum += math.Log(r.Ratio())
		}
		overlapGeo = math.Exp(logSum / float64(len(ov)))
		dp, err := harness.AblateDASPPadding()
		if err != nil {
			b.Fatal(err)
		}
		logSum = 0
		for _, r := range dp {
			logSum += math.Log(r.Ratio())
		}
		daspGeo = math.Exp(logSum / float64(len(dp)))
	}
	b.ReportMetric(overlapGeo, "overlapGeoRatio")
	b.ReportMetric(daspGeo, "daspRedundancy")
}

// BenchmarkWorkloads times one full TC run per workload (representative
// case), the per-kernel cost behind every grid experiment.
func BenchmarkWorkloads(b *testing.B) {
	s := cubie.NewSuite()
	for _, w := range s.Workloads() {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(w.Representative(), workload.TC); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
