# Build/test entry points for the Cubie reproduction.
#
#   make test          - vet + docs-check + unit tests (tier-1 gate)
#   make race          - full test suite under the race detector
#   make bench         - kernel + harness benchmarks with memory stats,
#                        archived as benchdata/BENCH_<date>.json (see
#                        docs/PERFORMANCE.md); set BENCHTIME=100ms for a
#                        quick smoke pass
#   make bench-compare - diff two benchmark snapshots and fail on >10%
#                        ns/op regressions:
#                        make bench-compare OLD=benchdata/BENCH_pre_panel.json \
#                                           NEW=benchdata/BENCH_post_panel.json
#   make bench-all     - time cold and warm `cubie all` end to end against a
#                        fresh run cache and archive the wall-clocks as
#                        benchdata/BENCHALL_<date>.json; gate with
#                        make bench-compare OLD=benchdata/BENCHALL_pre_sched.json \
#                                           NEW=benchdata/BENCHALL_<date>.json
#   make build         - compile everything
#   make vet           - static analysis only
#   make docs-check    - verify docs/README references (flags, make targets,
#                        CUBIE_* env vars) against the code

GO ?= go

# Per-benchmark measurement time for make bench. The default 1s matches go
# test's own default; BENCHTIME=100ms gives a fast smoke signal, BENCHTIME=5x
# runs a fixed iteration count for noisy boxes.
BENCHTIME ?= 1s

# Snapshots diffed by make bench-compare, and the slowdown fraction that
# fails the gate (0.10 = 10% ns/op).
OLD ?= benchdata/BENCH_pre_panel.json
NEW ?= benchdata/BENCH_post_panel.json
TOLERANCE ?= 0.10

.PHONY: all build vet test race bench bench-all bench-compare docs-check clean

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

docs-check:
	$(GO) run ./cmd/docscheck

test: vet docs-check
	$(GO) test ./...

race:
	$(GO) test -race ./...

# -p 1 runs the package test binaries serially: concurrent binaries contend
# for cores and distort ns/op (macro benchmarks inflate 2-3x).
bench:
	$(GO) test -p 1 -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson

bench-compare:
	$(GO) run ./cmd/benchjson -compare -tolerance $(TOLERANCE) $(OLD) $(NEW)

# End-to-end campaign wall-clock: the first `cubie all` populates a fresh
# run cache (cold), the second replays it (warm — zero workload
# executions). Both land in one BENCHALL_<date>.json snapshot for the
# bench-compare gate.
bench-all:
	@set -e; tmp=$$(mktemp -d); trap "rm -rf $$tmp" EXIT; \
	$(GO) build -o $$tmp/cubie ./cmd/cubie; \
	{ $(GO) run ./cmd/benchjson -exec BenchmarkCubieAllCold -- \
	    env CUBIE_CACHE=$$tmp/cache $$tmp/cubie all; \
	  $(GO) run ./cmd/benchjson -exec BenchmarkCubieAllWarm -- \
	    env CUBIE_CACHE=$$tmp/cache $$tmp/cubie all; } \
	| $(GO) run ./cmd/benchjson -o benchdata -prefix BENCHALL_

clean:
	$(GO) clean ./...
