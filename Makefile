# Build/test entry points for the Cubie reproduction.
#
#   make test          - vet + docs-check + unit tests (tier-1 gate)
#   make race          - full test suite under the race detector
#   make bench         - kernel + harness benchmarks with memory stats,
#                        archived as benchdata/BENCH_<date>.json (see
#                        docs/PERFORMANCE.md); set BENCHTIME=100ms for a
#                        quick smoke pass
#   make bench-compare - diff two benchmark snapshots and fail on >10%
#                        ns/op or allocs/op regressions (0 → >0 allocs
#                        always fails):
#                        make bench-compare OLD=benchdata/BENCH_pre_prestage.json \
#                                           NEW=benchdata/BENCH_post_prestage.json
#                        Rolling-baseline mode diffs NEW against the best-of
#                        envelope of the last K committed snapshots instead:
#                        make bench-compare ROLLING=3 NEW=benchdata/BENCH_new.json
#   make bench-trend   - render every committed benchdata/BENCH_*.json into
#                        the static dashboard benchdata/trend.html
#   make bench-trend-check - fail if trend.html is missing or stale against
#                        the committed snapshots (runs inside make test)
#   make bench-all     - time cold and warm `cubie all` end to end against a
#                        fresh run cache and archive the wall-clocks as
#                        benchdata/BENCHALL_<date>.json; gate with
#                        make bench-compare OLD=benchdata/BENCHALL_pre_sched.json \
#                                           NEW=benchdata/BENCHALL_<date>.json
#   make build         - compile everything
#   make vet           - static analysis only
#   make docs-check    - verify docs/README references (flags, make targets,
#                        CUBIE_* env vars, serve API routes and config keys)
#                        against the code, both directions for the serve API
#   make serve-smoke   - boot `cubie serve` on a random port, probe
#                        /healthz, fetch a figure, scrape /metrics, then
#                        SIGTERM and verify a clean drain (runs inside
#                        make test)
#   make dist-smoke    - run a small plan through `cubie dist` with two
#                        forked workers, diff the output bitwise against
#                        the single-process render, then warm-start a
#                        fresh worker off the shared store and require
#                        zero workload executions (runs inside make test)
#   make bench-dist    - time cold 1-worker vs cold 4-worker `cubie all`
#                        plus a cross-worker warm pass and archive the
#                        wall-clocks as benchdata/BENCHALL_<date>.json

GO ?= go

# Per-benchmark measurement time for make bench. The default 1s matches go
# test's own default; BENCHTIME=100ms gives a fast smoke signal, BENCHTIME=5x
# runs a fixed iteration count for noisy boxes.
BENCHTIME ?= 1s

# Snapshots diffed by make bench-compare, and the regression fractions that
# fail the gate (0.10 = 10%) on each axis. Setting ROLLING=K switches the
# baseline from the OLD file to the best-of envelope of the last K committed
# benchdata/BENCH_*.json snapshots.
OLD ?= benchdata/BENCH_pre_prestage.json
NEW ?= benchdata/BENCH_post_prestage.json
TOLERANCE ?= 0.10
ALLOC_TOLERANCE ?= 0.10
ROLLING ?=

.PHONY: all build vet test race bench bench-all bench-compare bench-trend \
	bench-trend-check docs-check serve-smoke dist-smoke bench-dist clean

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

docs-check:
	$(GO) run ./cmd/docscheck

test: vet docs-check bench-trend-check serve-smoke dist-smoke
	$(GO) test ./...

# End-to-end daemon smoke: boot on a random port (the --addr-file
# handshake), probe liveness, fetch one run-free figure, check the server's
# own metrics are exposed, then SIGTERM and require a clean graceful exit.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); trap "rm -rf $$tmp" EXIT; \
	$(GO) build -o $$tmp/cubie ./cmd/cubie; \
	CUBIE_CACHE=off $$tmp/cubie serve --addr 127.0.0.1:0 --addr-file $$tmp/addr & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "serve-smoke: daemon never wrote addr file" >&2; kill $$pid; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	curl -sf http://$$addr/healthz | grep -q '"ok"'; \
	curl -sf http://$$addr/api/v1/figures/specs | grep -q H200; \
	curl -sf http://$$addr/metrics | grep -q cubie_http_requests_total; \
	kill -TERM $$pid; wait $$pid; \
	echo "serve-smoke: ok ($$addr booted, served, drained)"

# End-to-end distributed-campaign smoke. Phase 1 renders figure9
# single-process with no cache (the comparator). Phase 2 coordinates the
# same plan across two cold forked workers publishing into a shared store
# and requires bitwise-identical stdout. Phase 3 re-coordinates against
# the warm store with one fresh worker (empty local cache) and requires
# the worker's own metrics to show zero workload executions — the whole
# plan arrives over the remote cache tier.
dist-smoke:
	@set -e; tmp=$$(mktemp -d); trap "rm -rf $$tmp" EXIT; \
	$(GO) build -o $$tmp/cubie ./cmd/cubie; \
	CUBIE_CACHE=off $$tmp/cubie roofline > $$tmp/single.txt; \
	CUBIE_CACHE=$$tmp/store $$tmp/cubie dist --plan figure9 --figure figure9 \
	    --workers 2 --lease-timeout 2m > $$tmp/cold.txt 2> $$tmp/cold.log \
	    || { cat $$tmp/cold.log >&2; exit 1; }; \
	cmp $$tmp/single.txt $$tmp/cold.txt \
	    || { echo "dist-smoke: 2-worker output differs from single-process" >&2; exit 1; }; \
	mkdir -p $$tmp/wm; \
	CUBIE_CACHE=$$tmp/store $$tmp/cubie dist --plan figure9 --figure figure9 \
	    --workers 1 --worker-metrics $$tmp/wm --lease-timeout 2m \
	    > $$tmp/warm.txt 2> $$tmp/warm.log \
	    || { cat $$tmp/warm.log >&2; exit 1; }; \
	cmp $$tmp/single.txt $$tmp/warm.txt \
	    || { echo "dist-smoke: warm worker output differs from single-process" >&2; exit 1; }; \
	grep -q '^cubie_harness_runs_started_total 0$$' $$tmp/wm/w1.prom \
	    || { echo "dist-smoke: fresh worker executed runs instead of warm-starting off the store:" >&2; \
	         grep '^cubie_harness_runs_started_total' $$tmp/wm/w1.prom >&2; exit 1; }; \
	echo "dist-smoke: ok (cold 2-worker and warm fresh-worker output both bitwise-identical, warm worker ran 0 workloads)"

race:
	$(GO) test -race ./...

# -p 1 runs the package test binaries serially: concurrent binaries contend
# for cores and distort ns/op (macro benchmarks inflate 2-3x).
bench:
	$(GO) test -p 1 -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson

bench-compare:
ifneq ($(ROLLING),)
	$(GO) run ./cmd/benchjson -compare -rolling $(ROLLING) \
		-tolerance $(TOLERANCE) -alloc-tolerance $(ALLOC_TOLERANCE) $(NEW)
else
	$(GO) run ./cmd/benchjson -compare \
		-tolerance $(TOLERANCE) -alloc-tolerance $(ALLOC_TOLERANCE) $(OLD) $(NEW)
endif

# The dashboard is committed alongside the snapshots it plots;
# bench-trend-check keeps the two in lockstep (make test runs it).
bench-trend:
	$(GO) run ./cmd/benchjson -trend

bench-trend-check:
	$(GO) run ./cmd/benchjson -trend -check

# End-to-end campaign wall-clock: the first `cubie all` populates a fresh
# run cache (cold), the second replays it (warm — zero workload
# executions). Both land in one BENCHALL_<date>.json snapshot for the
# bench-compare gate.
bench-all:
	@set -e; tmp=$$(mktemp -d); trap "rm -rf $$tmp" EXIT; \
	$(GO) build -o $$tmp/cubie ./cmd/cubie; \
	{ $(GO) run ./cmd/benchjson -exec BenchmarkCubieAllCold -- \
	    env CUBIE_CACHE=$$tmp/cache $$tmp/cubie all; \
	  $(GO) run ./cmd/benchjson -exec BenchmarkCubieAllWarm -- \
	    env CUBIE_CACHE=$$tmp/cache $$tmp/cubie all; } \
	| $(GO) run ./cmd/benchjson -o benchdata -prefix BENCHALL_

# Distributed campaign wall-clock: cold `cubie all` on 1 forked worker vs
# 4, then a cross-worker warm pass (fresh worker, warm shared store).
# Each pass gets its own fresh store so colds stay cold.
bench-dist:
	@set -e; tmp=$$(mktemp -d); trap "rm -rf $$tmp" EXIT; \
	$(GO) build -o $$tmp/cubie ./cmd/cubie; \
	{ $(GO) run ./cmd/benchjson -exec BenchmarkCubieAllDist1Cold -- \
	    env CUBIE_CACHE=$$tmp/store1 $$tmp/cubie all --workers 1; \
	  $(GO) run ./cmd/benchjson -exec BenchmarkCubieAllDist4Cold -- \
	    env CUBIE_CACHE=$$tmp/store4 $$tmp/cubie all --workers 4; \
	  $(GO) run ./cmd/benchjson -exec BenchmarkCubieAllDistWarm -- \
	    env CUBIE_CACHE=$$tmp/store4 $$tmp/cubie all --workers 1; } \
	| $(GO) run ./cmd/benchjson -o benchdata -prefix BENCHALL_

clean:
	$(GO) clean ./...
