# Build/test entry points for the Cubie reproduction.
#
#   make test    - vet + unit tests (tier-1 gate)
#   make race    - full test suite under the race detector
#   make bench   - kernel + harness benchmarks with memory stats,
#                  archived as benchdata/BENCH_<date>.json (see
#                  docs/PERFORMANCE.md)
#   make build   - compile everything
#   make vet     - static analysis only

GO ?= go

.PHONY: all build vet test race bench clean

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson

clean:
	$(GO) clean ./...
