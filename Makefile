# Build/test entry points for the Cubie reproduction.
#
#   make test       - vet + docs-check + unit tests (tier-1 gate)
#   make race       - full test suite under the race detector
#   make bench      - kernel + harness benchmarks with memory stats,
#                     archived as benchdata/BENCH_<date>.json (see
#                     docs/PERFORMANCE.md)
#   make build      - compile everything
#   make vet        - static analysis only
#   make docs-check - verify docs/README references (flags, make targets,
#                     CUBIE_* env vars) against the code

GO ?= go

.PHONY: all build vet test race bench docs-check clean

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

docs-check:
	$(GO) run ./cmd/docscheck

test: vet docs-check
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson

clean:
	$(GO) clean ./...
