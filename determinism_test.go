package repro

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels/spgemm"
	"repro/internal/mmu"
	"repro/internal/packcache"
	"repro/internal/par"
	"repro/internal/prestage"
	"repro/internal/tune"
	"repro/internal/workload"
)

// TestSuiteDeterminism is the suite-wide contract of the par engine: every
// workload's representative case, in every variant, must produce the
// bit-identical Output and the identical Profile whether the grid runs
// serially (one worker) or on a full pool. The engine only ever assigns
// whole output tiles to workers and merges reductions in fixed chunk order,
// so this holds exactly — not just to within round-off (Table 6's TC ≡ CC
// comparison depends on it).
func TestSuiteDeterminism(t *testing.T) {
	type outcome struct {
		res *workload.Result
		err error
	}
	runAll := func(workers int) map[string]outcome {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		out := map[string]outcome{}
		for _, w := range core.NewSuite().Workloads() {
			c := w.Representative()
			for _, v := range w.Variants() {
				res, err := w.Run(c, v)
				out[w.Name()+"/"+string(v)] = outcome{res, err}
			}
		}
		return out
	}

	serial := runAll(1)
	parallel := runAll(8)

	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for key, s := range serial {
		p, ok := parallel[key]
		if !ok {
			t.Errorf("%s: missing from parallel run", key)
			continue
		}
		if (s.err == nil) != (p.err == nil) {
			t.Errorf("%s: error mismatch: serial=%v parallel=%v", key, s.err, p.err)
			continue
		}
		if s.err != nil {
			continue
		}
		if len(s.res.Output) != len(p.res.Output) {
			t.Errorf("%s: output lengths differ: %d vs %d",
				key, len(s.res.Output), len(p.res.Output))
			continue
		}
		for i := range s.res.Output {
			if math.Float64bits(s.res.Output[i]) != math.Float64bits(p.res.Output[i]) {
				t.Errorf("%s: output[%d] differs bitwise: %v vs %v",
					key, i, s.res.Output[i], p.res.Output[i])
				break
			}
		}
		if !reflect.DeepEqual(s.res.Profile, p.res.Profile) {
			t.Errorf("%s: profiles differ:\nserial:   %+v\nparallel: %+v",
				key, s.res.Profile, p.res.Profile)
		}
		if s.res.Work != p.res.Work || s.res.MetricName != p.res.MetricName ||
			s.res.InputUtil != p.res.InputUtil || s.res.OutputUtil != p.res.OutputUtil {
			t.Errorf("%s: result metadata differs", key)
		}
	}
}

// TestSuitePanelDeterminism is the panel engine's suite-wide bit-identity
// contract: every workload's representative case, in every variant, must
// produce the bit-identical Output with the fused panel fast paths disabled
// (the CUBIE_NO_PANEL reference route of tile-at-a-time MMAs). The fused
// k-sweeps keep the exact ascending-k FMA chain per element, so this holds
// bitwise, not just to within round-off.
func TestSuitePanelDeterminism(t *testing.T) {
	runAll := func(panels bool) map[string][]float64 {
		was := mmu.SetPanelEnabled(panels)
		defer mmu.SetPanelEnabled(was)
		out := map[string][]float64{}
		for _, w := range core.NewSuite().Workloads() {
			c := w.Representative()
			for _, v := range w.Variants() {
				res, err := w.Run(c, v)
				if err != nil {
					t.Fatalf("%s/%s (panels=%v): %v", w.Name(), v, panels, err)
				}
				out[w.Name()+"/"+string(v)] = res.Output
			}
		}
		return out
	}

	fused := runAll(true)
	reference := runAll(false)

	if len(fused) != len(reference) {
		t.Fatalf("run counts differ: %d vs %d", len(fused), len(reference))
	}
	for key, f := range fused {
		r := reference[key]
		if len(f) != len(r) {
			t.Errorf("%s: output lengths differ: %d vs %d", key, len(f), len(r))
			continue
		}
		for i := range f {
			if math.Float64bits(f[i]) != math.Float64bits(r[i]) {
				t.Errorf("%s: output[%d] differs bitwise: %v vs %v", key, i, f[i], r[i])
				break
			}
		}
	}
}

// TestSuitePackCacheDeterminism is the packed-panel cache's suite-wide
// bit-identity contract: every workload's representative case, in every
// variant, must produce the bit-identical Output whether operands come from
// the hash-validated cache (both cold-miss and warm-hit runs), are staged
// per call (CUBIE_NO_PACKCACHE), or execute on the tile-at-a-time reference
// route with the cache on (CUBIE_NO_PANEL). The cache stores exactly the
// bytes the per-call packers produce, so all routes agree bitwise.
func TestSuitePackCacheDeterminism(t *testing.T) {
	runAll := func(cache, panels bool) map[string][]float64 {
		wasCache := packcache.SetEnabled(cache)
		wasPanels := mmu.SetPanelEnabled(panels)
		defer func() {
			packcache.SetEnabled(wasCache)
			mmu.SetPanelEnabled(wasPanels)
		}()
		out := map[string][]float64{}
		for _, w := range core.NewSuite().Workloads() {
			c := w.Representative()
			for _, v := range w.Variants() {
				res, err := w.Run(c, v)
				if err != nil {
					t.Fatalf("%s/%s (cache=%v panels=%v): %v", w.Name(), v, cache, panels, err)
				}
				out[w.Name()+"/"+string(v)] = res.Output
			}
		}
		return out
	}

	packcache.Flush() // first cached pass starts cold: misses pack and insert
	cold := runAll(true, true)
	warm := runAll(true, true) // second pass is served by hash-validated hits
	staged := runAll(false, true)
	tileLoop := runAll(true, false)

	for name, other := range map[string]map[string][]float64{
		"warm-hit": warm, "staging (cache off)": staged, "panels-off": tileLoop,
	} {
		if len(cold) == 0 || len(cold) != len(other) {
			t.Fatalf("%s: run counts differ or empty: %d vs %d", name, len(cold), len(other))
		}
		for key, c := range cold {
			o := other[key]
			if len(c) != len(o) {
				t.Errorf("%s %s: output lengths differ: %d vs %d", name, key, len(c), len(o))
				continue
			}
			for i := range c {
				if math.Float64bits(c[i]) != math.Float64bits(o[i]) {
					t.Errorf("%s %s: output[%d] differs bitwise: %v vs %v",
						name, key, i, c[i], o[i])
					break
				}
			}
		}
	}
}

// TestSuitePrestageDeterminism is the prestaged-operand contract: every
// workload's representative case, in every variant, must produce the
// bit-identical Output whether the hot loops consume the prestaged slabs
// (cold-miss and warm-hit runs), restage operands per call
// (CUBIE_NO_PRESTAGE=1), or run under a non-default tuned geometry (cubie
// tune's batch/chunk/block knobs). Slabs store exactly the bytes the staged
// path produces and the geometry knobs only re-partition loop iterations,
// so every route agrees bitwise.
func TestSuitePrestageDeterminism(t *testing.T) {
	runAll := func(pre bool) map[string][]float64 {
		was := prestage.SetEnabled(pre)
		defer prestage.SetEnabled(was)
		out := map[string][]float64{}
		for _, w := range core.NewSuite().Workloads() {
			c := w.Representative()
			for _, v := range w.Variants() {
				res, err := w.Run(c, v)
				if err != nil {
					t.Fatalf("%s/%s (prestage=%v): %v", w.Name(), v, pre, err)
				}
				out[w.Name()+"/"+string(v)] = res.Output
			}
		}
		return out
	}

	packcache.Flush() // first prestaged pass packs every slab cold
	cold := runAll(true)
	warm := runAll(true) // second pass reuses hash-validated slabs
	restaged := runAll(false)

	prevGeom := tune.Apply(tune.Geometry{SpGEMMBatch: 4, DASPChunk: 8, DMMABlock: 4})
	tuned := runAll(true)
	tune.Apply(prevGeom)

	for name, other := range map[string]map[string][]float64{
		"warm-hit": warm, "restaged (prestage off)": restaged, "tuned geometry": tuned,
	} {
		if len(cold) == 0 || len(cold) != len(other) {
			t.Fatalf("%s: run counts differ or empty: %d vs %d", name, len(cold), len(other))
		}
		for key, c := range cold {
			o := other[key]
			if len(c) != len(o) {
				t.Errorf("%s %s: output lengths differ: %d vs %d", name, key, len(c), len(o))
				continue
			}
			for i := range c {
				if math.Float64bits(c[i]) != math.Float64bits(o[i]) {
					t.Errorf("%s %s: output[%d] differs bitwise: %v vs %v",
						name, key, i, c[i], o[i])
					break
				}
			}
		}
	}
}

// TestSpGEMMAccumDeterminism is the SpGEMM accumulator-arena counterpart of
// the panel contract: with the dense stamped directory forced on
// (CUBIE_SPGEMM_DENSE=1 / spgemm.SetAccumMode(spgemm.AccumDense)) and forced
// off (=0 / AccumHash), every SpGEMM variant must produce the bit-identical
// Output — the directory regime only routes tiles to arena slots, never
// changes the addition order.
func TestSpGEMMAccumDeterminism(t *testing.T) {
	runSpGEMM := func(mode spgemm.AccumMode) map[string][]float64 {
		prev := spgemm.SetAccumMode(mode)
		defer spgemm.SetAccumMode(prev)
		out := map[string][]float64{}
		for _, w := range core.NewSuite().Workloads() {
			if w.Name() != "SpGEMM" {
				continue
			}
			c := w.Representative()
			for _, v := range w.Variants() {
				res, err := w.Run(c, v)
				if err != nil {
					t.Fatalf("%s/%s (mode=%d): %v", w.Name(), v, mode, err)
				}
				out[w.Name()+"/"+string(v)] = res.Output
			}
		}
		return out
	}

	dense := runSpGEMM(spgemm.AccumDense)
	hash := runSpGEMM(spgemm.AccumHash)

	if len(dense) == 0 || len(dense) != len(hash) {
		t.Fatalf("run counts differ or empty: %d vs %d", len(dense), len(hash))
	}
	for key, d := range dense {
		h := hash[key]
		if len(d) != len(h) {
			t.Errorf("%s: output lengths differ: %d vs %d", key, len(d), len(h))
			continue
		}
		for i := range d {
			if math.Float64bits(d[i]) != math.Float64bits(h[i]) {
				t.Errorf("%s: output[%d] differs bitwise: %v vs %v", key, i, d[i], h[i])
				break
			}
		}
	}
}
