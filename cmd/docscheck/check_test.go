package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fake repository for the checker.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const fakeMakefile = ".PHONY: all test\nall: test\n\ntest:\n\tgo test ./...\n\nbench:\n\tgo test -bench=.\n"

const fakeMain = `package main

import "flag"

func main() {
	fs := flag.NewFlagSet("x", flag.ExitOnError)
	fs.String("metrics", "", "")
	fs.Bool("verbose", false, "")
	_ = fs
}
`

const fakeEnvUser = `package par

import "os"

var n = os.Getenv("CUBIE_WORKERS")
`

// TestCheckClean verifies a consistent docs tree produces no violations.
func TestCheckClean(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": fakeEnvUser,
		"README.md":         "Use `--metrics` and `make test`.\n\n```sh\ntool --verbose\nmake bench   # CUBIE_WORKERS=2 make bench\n```\n",
		"docs/GUIDE.md":     "Prose mentioning --not-a-flag and make nothing and CUBIE_BOGUS is fine\nwhen it is not inside code markers.\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("clean tree produced violations: %v", v)
	}
}

// TestCheckViolations verifies each reference class is caught, with
// file:line positions.
func TestCheckViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": fakeEnvUser,
		"README.md":         "Set `CUBIE_WORKERS` to scale out.\n",
		"docs/BAD.md":       "line one\n`tool --bogus-flag`\n\n```\nmake deploy\nCUBIE_TURBO=1 tool\n```\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{
		"BAD.md:2: flag --bogus-flag",
		`BAD.md:5: make target "deploy"`,
		"BAD.md:6: environment variable CUBIE_TURBO",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
	if len(v) != 3 {
		t.Errorf("want exactly 3 violations, got %d:\n%s", len(v), joined)
	}
}

// TestCheckRealRepo dogfoods the checker on this repository: the docs the
// PR ships must themselves pass.
func TestCheckRealRepo(t *testing.T) {
	v, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("repository docs have stale references:\n%s", strings.Join(v, "\n"))
	}
}

// TestGather pins the fact extraction itself.
func TestGather(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": fakeEnvUser,
		"README.md":         "ok\n",
	})
	f, err := gather(root)
	if err != nil {
		t.Fatal(err)
	}
	if !f.flags["metrics"] || !f.flags["verbose"] || f.flags["bogus"] {
		t.Errorf("flags = %v", f.flags)
	}
	if !f.makeTargets["test"] || !f.makeTargets["bench"] || f.makeTargets[".PHONY"] {
		t.Errorf("makeTargets = %v", f.makeTargets)
	}
	if !f.envVars["CUBIE_WORKERS"] {
		t.Errorf("envVars = %v", f.envVars)
	}
}

const fakeServer = `package server

func routes(s *Server) {
	s.handle("GET /healthz", nil)
	s.handle("GET /api/v1/things", nil)
	s.handle("POST /api/v1/things", nil)
	s.handle("/", nil)
}
`

const fakeServerConfig = "package server\n\ntype Config struct {\n" +
	"\tAddr string `json:\"addr\" env:\"CUBIE_ADDR\"`\n" +
	"\tLimit int `json:\"limit\" env:\"CUBIE_LIMIT\"`\n" +
	"}\n"

const goodServeDoc = "# API\n\n" +
	"| `GET /healthz` | liveness |\n" +
	"| `GET /api/v1/things` | list |\n" +
	"| `POST /api/v1/things` | create |\n\n" +
	"## Configuration\n\n" +
	"| key | env | default |\n|---|---|---|\n" +
	"| `addr` | `CUBIE_ADDR` | `127.0.0.1:1` |\n" +
	"| `limit` | `CUBIE_LIMIT` | `4` |\n"

// TestServeSurfaceClean: a fully documented serve surface passes in both
// directions.
func TestServeSurfaceClean(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":                  fakeMakefile,
		"internal/server/server.go": fakeServer,
		"internal/server/config.go": fakeServerConfig,
		"README.md":                 "ok\n",
		"docs/SERVE.md":             goodServeDoc,
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("clean serve surface produced violations: %v", v)
	}
}

// TestServeSurfaceForward: documented routes and config keys with no code
// counterpart are violations.
func TestServeSurfaceForward(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":                  fakeMakefile,
		"internal/server/server.go": fakeServer,
		"internal/server/config.go": fakeServerConfig,
		"README.md":                 "ok\n",
		"docs/SERVE.md": goodServeDoc +
			"| `DELETE /api/v1/things` | not real |\n\n" +
			"## Configuration\n\n| `burst` | `CUBIE_LIMIT` | `9` |\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{
		`route "DELETE /api/v1/things" is not registered`,
		`config key "burst" is not a field`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
	if len(v) != 2 {
		t.Errorf("want exactly 2 violations, got %d:\n%s", len(v), joined)
	}
}

// TestServeSurfaceReverse: a registered route, config key, or serve env
// var missing from docs/SERVE.md is a violation — shipping an undocumented
// endpoint fails the gate too.
func TestServeSurfaceReverse(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":                  fakeMakefile,
		"internal/server/server.go": fakeServer,
		"internal/server/config.go": fakeServerConfig,
		"README.md":                 "Also honours `CUBIE_LIMIT`.\n",
		"docs/SERVE.md": "# API\n\n| `GET /healthz` | liveness |\n" +
			"| `GET /api/v1/things` | list |\n\n" +
			"## Configuration\n\n| `addr` | `CUBIE_ADDR` | `127.0.0.1:1` |\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{
		`registered route "POST /api/v1/things" is not documented`,
		`config key "limit" (internal/server/config.go) is not in the Configuration table`,
		"environment variable CUBIE_LIMIT (internal/server/config.go) is not documented",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
	if len(v) != 3 {
		t.Errorf("want exactly 3 violations, got %d:\n%s", len(v), joined)
	}
}
