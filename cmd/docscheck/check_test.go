package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fake repository for the checker.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const fakeMakefile = ".PHONY: all test\nall: test\n\ntest:\n\tgo test ./...\n\nbench:\n\tgo test -bench=.\n"

const fakeMain = `package main

import "flag"

func main() {
	fs := flag.NewFlagSet("x", flag.ExitOnError)
	fs.String("metrics", "", "")
	fs.Bool("verbose", false, "")
	_ = fs
}
`

const fakeEnvUser = `package par

import "os"

var n = os.Getenv("CUBIE_WORKERS")
`

// TestCheckClean verifies a consistent docs tree produces no violations.
func TestCheckClean(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": fakeEnvUser,
		"README.md":         "Use `--metrics` and `make test`.\n\n```sh\ntool --verbose\nmake bench   # CUBIE_WORKERS=2 make bench\n```\n",
		"docs/GUIDE.md":     "Prose mentioning --not-a-flag and make nothing and CUBIE_BOGUS is fine\nwhen it is not inside code markers.\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("clean tree produced violations: %v", v)
	}
}

// TestCheckViolations verifies each reference class is caught, with
// file:line positions.
func TestCheckViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": fakeEnvUser,
		"README.md":         "ok\n",
		"docs/BAD.md":       "line one\n`tool --bogus-flag`\n\n```\nmake deploy\nCUBIE_TURBO=1 tool\n```\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{
		"BAD.md:2: flag --bogus-flag",
		`BAD.md:5: make target "deploy"`,
		"BAD.md:6: environment variable CUBIE_TURBO",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
	if len(v) != 3 {
		t.Errorf("want exactly 3 violations, got %d:\n%s", len(v), joined)
	}
}

// TestCheckRealRepo dogfoods the checker on this repository: the docs the
// PR ships must themselves pass.
func TestCheckRealRepo(t *testing.T) {
	v, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("repository docs have stale references:\n%s", strings.Join(v, "\n"))
	}
}

// TestGather pins the fact extraction itself.
func TestGather(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": fakeEnvUser,
		"README.md":         "ok\n",
	})
	f, err := gather(root)
	if err != nil {
		t.Fatal(err)
	}
	if !f.flags["metrics"] || !f.flags["verbose"] || f.flags["bogus"] {
		t.Errorf("flags = %v", f.flags)
	}
	if !f.makeTargets["test"] || !f.makeTargets["bench"] || f.makeTargets[".PHONY"] {
		t.Errorf("makeTargets = %v", f.makeTargets)
	}
	if !f.envVars["CUBIE_WORKERS"] {
		t.Errorf("envVars = %v", f.envVars)
	}
}
