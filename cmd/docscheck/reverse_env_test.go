package main

import (
	"strings"
	"testing"
)

// TestReverseEnvUndocumented verifies the code→docs direction of the env-var
// check: a CUBIE_* variable read by a non-test .go file with no doc mention
// anywhere fails the gate.
func TestReverseEnvUndocumented(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": "package p\n\nimport \"os\"\n\nvar v = os.Getenv(\"CUBIE_SECRET_KNOB\")\n",
		"README.md":         "Nothing to see.\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "CUBIE_SECRET_KNOB is read by the code but not documented") {
		t.Fatalf("undocumented env knob not reported:\n%s", joined)
	}
	if len(v) != 1 {
		t.Fatalf("want exactly 1 violation, got %d:\n%s", len(v), joined)
	}
}

// TestReverseEnvDocumentedAnywhere verifies one code-marked mention in any
// doc satisfies the reverse check.
func TestReverseEnvDocumentedAnywhere(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":          fakeMakefile,
		"cmd/tool/main.go":  fakeMain,
		"internal/p/env.go": "package p\n\nimport \"os\"\n\nvar v = os.Getenv(\"CUBIE_SECRET_KNOB\")\n",
		"README.md":         "Nothing here.\n",
		"docs/KNOBS.md":     "Set `CUBIE_SECRET_KNOB=1` to do the thing.\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("documented knob still flagged: %v", v)
	}
}

// TestReverseEnvTestFilesExempt verifies variables that appear only in
// _test.go files create no documentation obligation (tests may fabricate
// knobs), while still counting as "read by the code" for the docs→code
// direction.
func TestReverseEnvTestFilesExempt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile":               fakeMakefile,
		"cmd/tool/main.go":       fakeMain,
		"internal/p/env_test.go": "package p\n\nimport \"os\"\n\nvar v = os.Getenv(\"CUBIE_TEST_ONLY\")\n",
		"README.md":              "Mentions `CUBIE_TEST_ONLY` legitimately.\n",
	})
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("test-only env var produced violations: %v", v)
	}
}
