package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// facts is everything the code side declares: the vocabulary the docs are
// checked against.
type facts struct {
	flags       map[string]bool // CLI flag names, without dashes
	makeTargets map[string]bool
	envVars     map[string]bool // CUBIE_* literals in .go files
}

var (
	reMakeTarget = regexp.MustCompile(`^([A-Za-z0-9][A-Za-z0-9_.-]*):`)
	reFlagDef    = regexp.MustCompile(`\.(?:String|Int|Int64|Uint|Bool|Float64|Duration)\("([a-z][a-z0-9-]*)"`)
	reEnvDef     = regexp.MustCompile(`"(CUBIE_[A-Z][A-Z0-9_]*)"`)

	reFlagRef = regexp.MustCompile(`--([a-z][a-z0-9-]*)`)
	reMakeRef = regexp.MustCompile(`\bmake ([a-z][a-z0-9_.-]*)`)
	reEnvRef  = regexp.MustCompile(`\bCUBIE_[A-Z][A-Z0-9_]*\b`)
	reSpan    = regexp.MustCompile("`([^`]*)`")
)

// gather collects the code-side facts from the repository at root.
func gather(root string) (*facts, error) {
	f := &facts{
		flags:       map[string]bool{},
		makeTargets: map[string]bool{},
		envVars:     map[string]bool{},
	}

	mk, err := os.ReadFile(filepath.Join(root, "Makefile"))
	if err != nil {
		return nil, fmt.Errorf("read Makefile: %w", err)
	}
	for _, line := range strings.Split(string(mk), "\n") {
		if m := reMakeTarget.FindStringSubmatch(line); m != nil && m[1] != ".PHONY" {
			f.makeTargets[m[1]] = true
		}
	}

	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Docs only talk about this repository's code.
			if name := d.Name(); name == ".git" || name == "benchdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range reEnvDef.FindAllStringSubmatch(string(src), -1) {
			f.envVars[m[1]] = true
		}
		// Flag definitions live in the command packages.
		if strings.Contains(filepath.ToSlash(path), "/cmd/") ||
			strings.HasPrefix(filepath.ToSlash(path), "cmd/") {
			for _, m := range reFlagDef.FindAllStringSubmatch(string(src), -1) {
				f.flags[m[1]] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// docFiles returns the documentation set: README.md plus docs/*.md.
func docFiles(root string) ([]string, error) {
	files := []string{filepath.Join(root, "README.md")}
	more, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	sort.Strings(more)
	return append(files, more...), nil
}

// check verifies every doc reference against the code-side facts and
// returns one "file:line: message" string per stale reference.
func check(root string) ([]string, error) {
	f, err := gather(root)
	if err != nil {
		return nil, err
	}
	files, err := docFiles(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, path := range files {
		v, err := checkFile(path, f)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

// checkFile scans one markdown file. Only code-marked regions are
// inspected: the interior of ``` fences, and inline backtick spans.
func checkFile(path string, f *facts) ([]string, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()

	var out []string
	inFence := false
	lineNo := 0
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		var region string
		if inFence {
			region = line
		} else {
			for _, m := range reSpan.FindAllStringSubmatch(line, -1) {
				region += m[1] + " "
			}
		}
		if region == "" {
			continue
		}
		for _, m := range reFlagRef.FindAllStringSubmatch(region, -1) {
			if !f.flags[m[1]] {
				out = append(out, fmt.Sprintf("%s:%d: flag --%s is not defined by any command", path, lineNo, m[1]))
			}
		}
		for _, m := range reMakeRef.FindAllStringSubmatch(region, -1) {
			if !f.makeTargets[m[1]] {
				out = append(out, fmt.Sprintf("%s:%d: make target %q is not in the Makefile", path, lineNo, m[1]))
			}
		}
		for _, m := range reEnvRef.FindAllString(region, -1) {
			if !f.envVars[m] {
				out = append(out, fmt.Sprintf("%s:%d: environment variable %s is not read by any .go file", path, lineNo, m))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
