package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// facts is everything the code side declares: the vocabulary the docs are
// checked against.
type facts struct {
	flags       map[string]bool // CLI flag names, without dashes
	makeTargets map[string]bool
	envVars     map[string]bool // CUBIE_* literals in .go files
	// codeEnvVars is the subset of envVars found in non-test .go files: the
	// real knob surface, which the docs must cover in the reverse direction
	// (tests may mention extra variables without creating a doc obligation).
	codeEnvVars map[string]bool

	// The serve control API surface (internal/server). Routes are the
	// literal patterns registered through s.handle ("GET /api/v1/figures");
	// configKeys and serveEnv are the json/env struct tags of
	// internal/server/config.go. All three are checked in BOTH directions
	// against docs/SERVE.md: a documented route or key must exist in the
	// code, and everything the code registers must be documented.
	routes     map[string]bool
	configKeys map[string]bool
	serveEnv   map[string]bool
}

var (
	reMakeTarget = regexp.MustCompile(`^([A-Za-z0-9][A-Za-z0-9_.-]*):`)
	reFlagDef    = regexp.MustCompile(`\.(?:String|Int|Int64|Uint|Bool|Float64|Duration)\("([a-z][a-z0-9-]*)"`)
	reEnvDef     = regexp.MustCompile(`"(CUBIE_[A-Z][A-Z0-9_]*)"`)
	reRouteDef   = regexp.MustCompile(`\bhandle\("((?:GET|POST|PUT|DELETE|PATCH|HEAD) /[^"]*)"`)
	reJSONTag    = regexp.MustCompile("`json:\"([a-z_]+)\" env:\"(CUBIE_[A-Z0-9_]*)\"`")

	reFlagRef   = regexp.MustCompile(`--([a-z][a-z0-9-]*)`)
	reMakeRef   = regexp.MustCompile(`\bmake ([a-z][a-z0-9_.-]*)`)
	reEnvRef    = regexp.MustCompile(`\bCUBIE_[A-Z][A-Z0-9_]*\b`)
	reRouteRef  = regexp.MustCompile(`\b(GET|POST|PUT|DELETE|PATCH|HEAD) (/[A-Za-z0-9_{}./-]*)`)
	reSpan      = regexp.MustCompile("`([^`]*)`")
	reConfigKey = regexp.MustCompile("^\\|\\s*`([a-z_]+)`")
)

// serveDoc is the API reference the serve surface is reconciled against.
const serveDoc = "docs/SERVE.md"

// gather collects the code-side facts from the repository at root.
func gather(root string) (*facts, error) {
	f := &facts{
		flags:       map[string]bool{},
		makeTargets: map[string]bool{},
		envVars:     map[string]bool{},
		codeEnvVars: map[string]bool{},
		routes:      map[string]bool{},
		configKeys:  map[string]bool{},
		serveEnv:    map[string]bool{},
	}

	mk, err := os.ReadFile(filepath.Join(root, "Makefile"))
	if err != nil {
		return nil, fmt.Errorf("read Makefile: %w", err)
	}
	for _, line := range strings.Split(string(mk), "\n") {
		if m := reMakeTarget.FindStringSubmatch(line); m != nil && m[1] != ".PHONY" {
			f.makeTargets[m[1]] = true
		}
	}

	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Docs only talk about this repository's code.
			if name := d.Name(); name == ".git" || name == "benchdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range reEnvDef.FindAllStringSubmatch(string(src), -1) {
			f.envVars[m[1]] = true
			if !strings.HasSuffix(path, "_test.go") {
				f.codeEnvVars[m[1]] = true
			}
		}
		// Flag definitions live in the command packages.
		rel := filepath.ToSlash(path)
		if strings.Contains(rel, "/cmd/") || strings.HasPrefix(rel, "cmd/") {
			for _, m := range reFlagDef.FindAllStringSubmatch(string(src), -1) {
				f.flags[m[1]] = true
			}
		}
		// The serve API surface: route registrations anywhere in
		// internal/server (tests excluded — they fabricate handlers), and
		// the tagged Config fields of its config.go.
		if strings.Contains(rel, "internal/server/") && !strings.HasSuffix(rel, "_test.go") {
			for _, m := range reRouteDef.FindAllStringSubmatch(string(src), -1) {
				f.routes[m[1]] = true
			}
			if strings.HasSuffix(rel, "internal/server/config.go") {
				for _, m := range reJSONTag.FindAllStringSubmatch(string(src), -1) {
					f.configKeys[m[1]] = true
					f.serveEnv[m[2]] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// docFiles returns the documentation set: README.md plus docs/*.md.
func docFiles(root string) ([]string, error) {
	files := []string{filepath.Join(root, "README.md")}
	more, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	sort.Strings(more)
	return append(files, more...), nil
}

// docRefs is what one markdown file claims about the serve surface.
type docRefs struct {
	routes     map[string]bool // "METHOD /path" tokens in code regions
	configKeys map[string]bool // first-column keys of "## Configuration" table rows
	envVars    map[string]bool // CUBIE_* tokens in code regions
}

// check verifies every doc reference against the code-side facts and
// returns one "file:line: message" string per stale reference.
func check(root string) ([]string, error) {
	f, err := gather(root)
	if err != nil {
		return nil, err
	}
	files, err := docFiles(root)
	if err != nil {
		return nil, err
	}
	var out []string
	serveRefs := docRefs{
		routes:     map[string]bool{},
		configKeys: map[string]bool{},
		envVars:    map[string]bool{},
	}
	allEnvRefs := map[string]bool{}
	for _, path := range files {
		v, refs, err := checkFile(path, f)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
		for e := range refs.envVars {
			allEnvRefs[e] = true
		}
		if filepath.ToSlash(path) == filepath.ToSlash(filepath.Join(root, serveDoc)) {
			serveRefs = refs
		}
	}

	// Reverse direction for the knob surface: every CUBIE_* variable a
	// non-test .go file reads must be documented somewhere in README.md or
	// docs/ — an env knob shipped without documentation fails the gate just
	// like a documented knob the code dropped.
	for _, e := range sorted(f.codeEnvVars) {
		if !allEnvRefs[e] {
			out = append(out, fmt.Sprintf("%s: environment variable %s is read by the code but not documented in README.md or docs/", root, e))
		}
	}

	// Reverse direction: the serve surface the code registers must be
	// documented in docs/SERVE.md — a route, config key, or CUBIE_* config
	// variable the reference omits fails the gate just like a stale one.
	doc := filepath.Join(root, serveDoc)
	for _, r := range sorted(f.routes) {
		if !serveRefs.routes[r] {
			out = append(out, fmt.Sprintf("%s: registered route %q is not documented", doc, r))
		}
	}
	for _, k := range sorted(f.configKeys) {
		if !serveRefs.configKeys[k] {
			out = append(out, fmt.Sprintf("%s: config key %q (internal/server/config.go) is not in the Configuration table", doc, k))
		}
	}
	for _, e := range sorted(f.serveEnv) {
		if !serveRefs.envVars[e] {
			out = append(out, fmt.Sprintf("%s: environment variable %s (internal/server/config.go) is not documented", doc, e))
		}
	}
	return out, nil
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkFile scans one markdown file. Only code-marked regions are
// inspected: the interior of ``` fences, and inline backtick spans. It
// returns the violations plus the serve-surface references the file makes
// (for the reverse checks).
func checkFile(path string, f *facts) ([]string, docRefs, error) {
	refs := docRefs{
		routes:     map[string]bool{},
		configKeys: map[string]bool{},
		envVars:    map[string]bool{},
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, refs, err
	}
	defer file.Close()

	var out []string
	inFence := false
	inConfigSection := false
	lineNo := 0
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "## ") && !inFence {
			inConfigSection = strings.TrimSpace(line) == "## Configuration"
		}
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		// Configuration-table keys: the first backticked column of table
		// rows under "## Configuration" documents one config-file key.
		if inConfigSection && !inFence {
			if m := reConfigKey.FindStringSubmatch(line); m != nil {
				refs.configKeys[m[1]] = true
				if len(f.configKeys) > 0 && !f.configKeys[m[1]] {
					out = append(out, fmt.Sprintf("%s:%d: config key %q is not a field of internal/server/config.go", path, lineNo, m[1]))
				}
			}
		}
		var region string
		if inFence {
			region = line
		} else {
			for _, m := range reSpan.FindAllStringSubmatch(line, -1) {
				region += m[1] + " "
			}
		}
		if region == "" {
			continue
		}
		for _, m := range reFlagRef.FindAllStringSubmatch(region, -1) {
			if !f.flags[m[1]] {
				out = append(out, fmt.Sprintf("%s:%d: flag --%s is not defined by any command", path, lineNo, m[1]))
			}
		}
		for _, m := range reMakeRef.FindAllStringSubmatch(region, -1) {
			if !f.makeTargets[m[1]] {
				out = append(out, fmt.Sprintf("%s:%d: make target %q is not in the Makefile", path, lineNo, m[1]))
			}
		}
		for _, m := range reEnvRef.FindAllString(region, -1) {
			refs.envVars[m] = true
			if !f.envVars[m] {
				out = append(out, fmt.Sprintf("%s:%d: environment variable %s is not read by any .go file", path, lineNo, m))
			}
		}
		for _, m := range reRouteRef.FindAllStringSubmatch(region, -1) {
			route := m[1] + " " + m[2]
			refs.routes[route] = true
			if len(f.routes) > 0 && !f.routes[route] {
				out = append(out, fmt.Sprintf("%s:%d: route %q is not registered by internal/server", path, lineNo, route))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, refs, err
	}
	return out, refs, nil
}
