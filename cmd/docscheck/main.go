// Command docscheck cross-references the documentation against the code,
// so README.md and docs/*.md cannot drift from what the repository
// actually ships. It verifies that every reference inside a code fence or
// inline code span to
//
//   - a double-dash CLI flag (--metrics) names a flag cmd/cubie defines,
//   - a make target (make docs-check) names a target the Makefile defines,
//   - a CUBIE_* environment variable names one a .go file reads,
//   - an HTTP route token (GET /api/v1/figures) names a route
//     internal/server registers,
//   - a "## Configuration" table key in docs/SERVE.md names a field of
//     internal/server/config.go,
//
// and exits non-zero listing file:line for every stale reference. The
// serve API surface is additionally checked in the REVERSE direction:
// every route internal/server registers, every config key, and every
// CUBIE_* variable its config declares must appear in docs/SERVE.md —
// shipping an endpoint without documenting it fails the same gate as
// documenting one that does not exist. Run it via `make docs-check`;
// `make test` includes it, so documentation drift fails the tier-1 gate.
//
// The checker is deliberately conservative: it only inspects code-marked
// regions (fenced blocks and backtick spans), where a token is a concrete
// claim about the repository rather than prose.
package main

import (
	"fmt"
	"os"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d stale documentation reference(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("docscheck: documentation references are consistent with the code")
}
