// Command benchjson converts `go test -bench` text output into a JSON
// snapshot for the performance log described in docs/PERFORMANCE.md,
// diffs two snapshots for regressions, renders the committed snapshot
// series into a static trend dashboard, and times whole commands as
// synthetic benchmarks.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson [-o DIR]
//	go run ./cmd/benchjson -compare old.json new.json [-tolerance 0.10] [-alloc-tolerance 0.10]
//	go run ./cmd/benchjson -compare -rolling 3 new.json [-baseline-dir benchdata]
//	go run ./cmd/benchjson -trend [-baseline-dir benchdata] [-check]
//	go run ./cmd/benchjson -exec BenchmarkCubieAllCold -- cubie all
//
// In capture mode it parses the standard benchmark result lines (name,
// iterations, ns/op, optional B/op, allocs/op, and any custom metrics) plus
// the goos/goarch/pkg/cpu headers, and writes <prefix><date>.json into DIR
// (default "benchdata" with prefix "BENCH_"). Pass -o - to print the JSON
// to stdout instead.
//
// In compare mode it matches the benchmarks of the two snapshots by package
// and name, prints an aligned diff table (worst regression first), and exits
// non-zero if any benchmark slowed down by more than -tolerance ns/op
// (default 10%) or failed the allocation gate: allocs/op up by more than
// -alloc-tolerance, or any allocation appearing in a benchmark that was
// allocation-free before (0 → >0 always fails — those zeros are contracts).
// With -rolling K the old side is not a file but the best-of envelope of
// the last K committed BENCH_*.json snapshots in -baseline-dir, so one
// noisy historical capture can neither hide nor fake a regression — the
// gate make bench-compare ROLLING=K runs.
//
// In trend mode it renders every committed BENCH_*.json in -baseline-dir
// (oldest first: by snapshot date, pre_ before post_ on ties) into a
// self-contained HTML dashboard at <baseline-dir>/trend.html — one card
// per benchmark with ns/op and allocs/op sparklines (make bench-trend).
// With -check it renders to memory instead and exits non-zero if the
// committed trend.html is missing or stale; make test runs this so the
// dashboard cannot drift behind the snapshots it plots.
//
// In exec mode it runs the command after "--" (repeated -count times,
// stdout discarded, stderr passed through) and prints one standard
// benchmark result line per run with the command's wall-clock as ns/op.
// The output feeds straight back into capture mode — make bench-all uses
// this to snapshot cold and warm `cubie all` wall-clock.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/benchjson"
)

func main() {
	out := flag.String("o", "benchdata", "output directory, or - for stdout")
	prefix := flag.String("prefix", "BENCH_", "snapshot file name prefix in capture mode")
	compare := flag.Bool("compare", false, "compare two snapshot files: benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.10, "ns/op slowdown fraction that fails -compare (0.10 = 10%)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "allocs/op growth fraction that fails -compare; 0→>0 always fails")
	rolling := flag.Int("rolling", 0, "with -compare: baseline is the best-of envelope of the last K snapshots in -baseline-dir")
	baselineDir := flag.String("baseline-dir", "benchdata", "directory of committed BENCH_*.json snapshots for -rolling and -trend")
	trend := flag.Bool("trend", false, "render the snapshot series in -baseline-dir into trend.html")
	check := flag.Bool("check", false, "with -trend: verify the committed trend.html is current instead of writing it")
	execName := flag.String("exec", "", "time the command after -- and print a benchmark line under this name")
	execCount := flag.Int("count", 1, "repetitions of the -exec command, one result line each")
	flag.Parse()

	if *trend {
		os.Exit(runTrend(*baselineDir, *check))
	}
	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance, *allocTolerance, *rolling, *baselineDir))
	}
	if *execName != "" {
		os.Exit(runExec(*execName, *execCount, flag.Args()))
	}

	snap, err := benchjson.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	snap.Date = time.Now().Format("2006-01-02")

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')

	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, *prefix+snap.Date+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

// runExec times a command as a synthetic benchmark: each repetition prints
// one `Benchmark<name> 1 <wall-ns> ns/op` line, preceded by the goos/goarch
// headers capture mode expects, so the output pipes straight into it.
func runExec(name string, count int, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -exec needs a command after --")
		return 2
	}
	if !strings.HasPrefix(name, "Benchmark") {
		name = "Benchmark" + name
	}
	fmt.Printf("goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
	for i := 0; i < count; i++ {
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Stdout = io.Discard
		cmd.Stderr = os.Stderr
		t0 := time.Now()
		err := cmd.Run()
		ns := time.Since(t0).Nanoseconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", strings.Join(args, " "), err)
			return 1
		}
		fmt.Printf("%s 1 %d ns/op\n", name, ns)
	}
	return 0
}

func runCompare(args []string, tolerance, allocTolerance float64, rolling int, baselineDir string) int {
	var old, new *benchjson.Snapshot
	var err error
	switch {
	case rolling > 0:
		if len(args) != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare -rolling K needs exactly one snapshot file: new.json")
			return 2
		}
		if new, err = loadSnapshot(args[0]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		if old, err = rollingBaseline(baselineDir, rolling, args[0]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
	case len(args) == 2:
		if old, err = loadSnapshot(args[0]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		if new, err = loadSnapshot(args[1]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
	default:
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two snapshot files: old.json new.json (or -rolling K new.json)")
		return 2
	}
	cmp := benchjson.Compare(old, new)
	cmp.Render(os.Stdout, tolerance, allocTolerance)
	code := 0
	if regs := cmp.Regressions(tolerance); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% ns/op\n",
			len(regs), tolerance*100)
		code = 1
	}
	if regs := cmp.AllocRegressions(allocTolerance); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) failed the allocs/op gate (>%.0f%% growth or 0 → >0)\n",
			len(regs), allocTolerance*100)
		code = 1
	}
	if code == 0 {
		fmt.Printf("no ns/op or allocs/op regressions beyond %.0f%%/%.0f%% across %d matched benchmarks\n",
			tolerance*100, allocTolerance*100, len(cmp.Deltas))
	}
	return code
}

// rollingBaseline loads the last k committed snapshots (excluding the one
// under test, if it lives in the same directory) and folds them into their
// best-of envelope.
func rollingBaseline(dir string, k int, exclude string) (*benchjson.Snapshot, error) {
	files, err := snapshotFiles(dir)
	if err != nil {
		return nil, err
	}
	absEx, _ := filepath.Abs(exclude)
	kept := files[:0]
	for _, f := range files {
		if abs, _ := filepath.Abs(f); abs == absEx {
			continue
		}
		kept = append(kept, f)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("no baseline snapshots in %s", dir)
	}
	if len(kept) > k {
		kept = kept[len(kept)-k:]
	}
	var snaps []*benchjson.Snapshot
	for _, f := range kept {
		s, err := loadSnapshot(f)
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, s)
	}
	fmt.Printf("rolling baseline: envelope of %s\n", strings.Join(kept, ", "))
	return benchjson.Envelope(snaps...), nil
}

// snapshotFiles lists dir's BENCH_*.json oldest first: primary key the
// snapshot's embedded date; within a date, files that form a pre_/post_
// A/B pair (the same-session capture convention of docs/PERFORMANCE.md)
// sort by their shared stem with pre before post, so each session's pair
// stays adjacent and in causal order. The order is a pure function of the
// committed files, so trend renders are reproducible across machines.
func snapshotFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	type entry struct {
		path, date, stem string
		rank             int
	}
	entries := make([]entry, 0, len(paths))
	for _, p := range paths {
		s, err := loadSnapshot(p)
		if err != nil {
			return nil, err
		}
		rank := 1
		base := filepath.Base(p)
		stem := base
		if strings.Contains(base, "_pre") {
			rank = 0
			stem = strings.Replace(base, "_pre", "_", 1)
		} else if strings.Contains(base, "_post") {
			rank = 2
			stem = strings.Replace(base, "_post", "_", 1)
		}
		entries = append(entries, entry{path: p, date: s.Date, stem: stem, rank: rank})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].date != entries[j].date {
			return entries[i].date < entries[j].date
		}
		if entries[i].stem != entries[j].stem {
			return entries[i].stem < entries[j].stem
		}
		if entries[i].rank != entries[j].rank {
			return entries[i].rank < entries[j].rank
		}
		return entries[i].path < entries[j].path
	})
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.path
	}
	return out, nil
}

// runTrend renders the committed snapshot series into dir/trend.html, or
// with check=true regenerates it in memory and fails if the committed page
// is missing or differs (the dashboard-freshness gate in make test).
func runTrend(dir string, check bool) int {
	files, err := snapshotFiles(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	var snaps []*benchjson.Snapshot
	var labels []string
	for _, f := range files {
		s, err := loadSnapshot(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		snaps = append(snaps, s)
		labels = append(labels, strings.TrimSuffix(filepath.Base(f), ".json"))
	}
	var buf bytes.Buffer
	if err := benchjson.RenderTrend(&buf, snaps, labels); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	page := filepath.Join(dir, "trend.html")
	if check {
		committed, err := os.ReadFile(page)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s missing or unreadable (%v); run make bench-trend and commit it\n", page, err)
			return 1
		}
		if !bytes.Equal(committed, buf.Bytes()) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is stale against the committed snapshots; run make bench-trend and commit it\n", page)
			return 1
		}
		fmt.Printf("%s is current (%d snapshots, %d benchmarks)\n", page, len(snaps), countSeries(snaps))
		return 0
	}
	if err := os.WriteFile(page, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d snapshots, %d benchmarks)\n", page, len(snaps), countSeries(snaps))
	return 0
}

// countSeries counts the distinct benchmarks across a snapshot sequence.
func countSeries(snaps []*benchjson.Snapshot) int {
	seen := map[string]bool{}
	for _, s := range snaps {
		for _, b := range s.Benchmarks {
			seen[b.Package+"."+b.Name] = true
		}
	}
	return len(seen)
}

func loadSnapshot(path string) (*benchjson.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap benchjson.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &snap, nil
}
