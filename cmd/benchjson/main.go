// Command benchjson converts `go test -bench` text output into a JSON
// snapshot for the performance log described in docs/PERFORMANCE.md.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson [-o DIR]
//
// It parses the standard benchmark result lines (name, iterations, ns/op,
// optional B/op, allocs/op, and any custom metrics) plus the goos/goarch/
// pkg/cpu headers, and writes BENCH_<date>.json into DIR (default
// "benchdata"). Pass -o - to print the JSON to stdout instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/benchjson"
)

func main() {
	out := flag.String("o", "benchdata", "output directory, or - for stdout")
	flag.Parse()

	snap, err := benchjson.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	snap.Date = time.Now().Format("2006-01-02")

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')

	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, "BENCH_"+snap.Date+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}
