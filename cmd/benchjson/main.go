// Command benchjson converts `go test -bench` text output into a JSON
// snapshot for the performance log described in docs/PERFORMANCE.md,
// diffs two snapshots for regressions, and times whole commands as
// synthetic benchmarks.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson [-o DIR]
//	go run ./cmd/benchjson -compare old.json new.json [-tolerance 0.10]
//	go run ./cmd/benchjson -exec BenchmarkCubieAllCold -- cubie all
//
// In capture mode it parses the standard benchmark result lines (name,
// iterations, ns/op, optional B/op, allocs/op, and any custom metrics) plus
// the goos/goarch/pkg/cpu headers, and writes <prefix><date>.json into DIR
// (default "benchdata" with prefix "BENCH_"). Pass -o - to print the JSON
// to stdout instead.
//
// In compare mode it matches the benchmarks of the two snapshots by package
// and name, prints an aligned diff table (worst regression first), and exits
// non-zero if any benchmark slowed down by more than the tolerance (default
// 10% ns/op) — the gate make bench-compare runs.
//
// In exec mode it runs the command after "--" (repeated -count times,
// stdout discarded, stderr passed through) and prints one standard
// benchmark result line per run with the command's wall-clock as ns/op.
// The output feeds straight back into capture mode — make bench-all uses
// this to snapshot cold and warm `cubie all` wall-clock.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchjson"
)

func main() {
	out := flag.String("o", "benchdata", "output directory, or - for stdout")
	prefix := flag.String("prefix", "BENCH_", "snapshot file name prefix in capture mode")
	compare := flag.Bool("compare", false, "compare two snapshot files: benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.10, "ns/op slowdown fraction that fails -compare (0.10 = 10%)")
	execName := flag.String("exec", "", "time the command after -- and print a benchmark line under this name")
	execCount := flag.Int("count", 1, "repetitions of the -exec command, one result line each")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance))
	}
	if *execName != "" {
		os.Exit(runExec(*execName, *execCount, flag.Args()))
	}

	snap, err := benchjson.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	snap.Date = time.Now().Format("2006-01-02")

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')

	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, *prefix+snap.Date+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

// runExec times a command as a synthetic benchmark: each repetition prints
// one `Benchmark<name> 1 <wall-ns> ns/op` line, preceded by the goos/goarch
// headers capture mode expects, so the output pipes straight into it.
func runExec(name string, count int, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -exec needs a command after --")
		return 2
	}
	if !strings.HasPrefix(name, "Benchmark") {
		name = "Benchmark" + name
	}
	fmt.Printf("goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
	for i := 0; i < count; i++ {
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Stdout = io.Discard
		cmd.Stderr = os.Stderr
		t0 := time.Now()
		err := cmd.Run()
		ns := time.Since(t0).Nanoseconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", strings.Join(args, " "), err)
			return 1
		}
		fmt.Printf("%s 1 %d ns/op\n", name, ns)
	}
	return 0
}

func runCompare(args []string, tolerance float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two snapshot files: old.json new.json")
		return 2
	}
	old, err := loadSnapshot(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	new, err := loadSnapshot(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	cmp := benchjson.Compare(old, new)
	cmp.Render(os.Stdout, tolerance)
	if regs := cmp.Regressions(tolerance); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% ns/op\n",
			len(regs), tolerance*100)
		return 1
	}
	fmt.Printf("no regressions beyond %.0f%% across %d matched benchmarks\n",
		tolerance*100, len(cmp.Deltas))
	return 0
}

func loadSnapshot(path string) (*benchjson.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap benchjson.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &snap, nil
}
