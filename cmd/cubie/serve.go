package main

// The serve and fetch subcommands: `cubie serve` boots the long-lived
// characterization daemon (internal/server) over the same harness the CLI
// uses; `cubie fetch` is its thin client. Configuration layers in the
// documented precedence order (docs/SERVE.md): built-in defaults, then the
// --config JSON file, then CUBIE_* environment variables, then explicit
// CLI flags.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/cubie"
	"repro/internal/server"
	"repro/internal/server/client"
)

// serveFlags carries the serve-related CLI flags plus which of them were
// explicitly set — only explicit flags override the config file and
// environment (a flag left at its default must not clobber them).
type serveFlags struct {
	addr        string
	addrFile    string
	configPath  string
	maxInflight int
	set         map[string]bool
}

// flagsSet reports which flags the user passed explicitly.
func flagsSet(fs *flag.FlagSet) map[string]bool {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

func cmdServe(h *cubie.Harness, f serveFlags) {
	cfg := server.Defaults()
	if f.configPath != "" {
		if err := cfg.LoadFile(f.configPath); err != nil {
			fatal(err)
		}
	}
	if err := cfg.ApplyEnv(); err != nil {
		fatal(err)
	}
	if f.set["addr"] {
		cfg.Addr = f.addr
	}
	if f.set["addr-file"] {
		cfg.AddrFile = f.addrFile
	}
	if f.set["max-inflight"] {
		cfg.MaxInflightRuns = f.maxInflight
	}

	s, err := server.New(h, cfg)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "cubie: serving on %s (SIGTERM drains; see docs/SERVE.md)\n", cfg.Addr)
	if err := s.Run(ctx); err != nil {
		fatal(err)
	}
}

// cmdFetch talks to a running daemon: with no argument it lists the
// figure catalog, with one it prints that figure's bytes — identical to
// the matching `cubie all` section.
func cmdFetch(addr string, args []string) {
	c := client.New(addr)
	if len(args) == 0 {
		figs, err := c.Figures()
		if err != nil {
			fatal(err)
		}
		for _, f := range figs {
			mark := " "
			if f.InAll {
				mark = "*"
			}
			fmt.Printf("%s %-14s %s\n", mark, f.Name, f.Title)
		}
		fmt.Println("\n(* = rendered by `cubie all`; fetch with: cubie fetch <name> [--addr host:port])")
		return
	}
	data, err := c.Figure(args[0])
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(data)
}
