package main

// Observability plumbing for the CLI: every cubie command accepts
//
//	--metrics <file|->     metrics snapshot after the command (Prometheus
//	                       text; a .json path switches to JSON)
//	--trace-host <file|->  Chrome-trace JSON of real host execution spans
//	--pprof <file>         CPU profile of the command, with samples labeled
//	                       by {workload, variant, phase}
//
// plus the `run` command, which executes workloads through the harness for
// exactly this kind of inspection. See docs/OBSERVABILITY.md.

import (
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"repro/cubie"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// observability holds the sinks opened before the command runs.
type observability struct {
	pprofFile   *os.File
	host        *trace.HostRecorder
	hostPath    string
	metricsPath string
}

// startObservability opens the requested sinks: it starts the CPU profile
// and the host-span recorder before the command executes. Empty paths
// disable the corresponding sink.
func startObservability(pprofPath, hostPath, metricsPath string) (*observability, error) {
	o := &observability{hostPath: hostPath, metricsPath: metricsPath}
	if pprofPath != "" {
		f, err := os.Create(pprofPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		o.pprofFile = f
	}
	if hostPath != "" {
		o.host = trace.StartHost()
	}
	return o, nil
}

// finish flushes every active sink: stops the CPU profile, writes the host
// timeline, and writes the metrics snapshot (in that order, so the snapshot
// reflects the whole command).
func (o *observability) finish() error {
	if o.pprofFile != nil {
		pprof.StopCPUProfile()
		if err := o.pprofFile.Close(); err != nil {
			return err
		}
		o.pprofFile = nil
	}
	if o.host != nil {
		trace.StopHost()
		if err := writeTo(o.hostPath, o.host.Write); err != nil {
			return fmt.Errorf("write host trace: %w", err)
		}
		o.host = nil
	}
	if o.metricsPath != "" {
		write := metrics.WritePrometheus
		if strings.HasSuffix(o.metricsPath, ".json") {
			write = metrics.WriteJSON
		}
		if err := writeTo(o.metricsPath, write); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	return nil
}

// writeTo streams fn's output to path; "-" means stdout.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cmdRun executes workloads through the instrumented harness path:
//
//	cubie run                          every workload, representative case, TC
//	cubie run <workload>               representative case, TC
//	cubie run <workload> <case>        TC
//	cubie run <workload> <case> <variant>
//
// Combined with --metrics / --trace-host / --pprof it is the suite's
// observability entry point: one command that really executes kernels and
// then snapshots what the runtime saw.
func cmdRun(h *cubie.Harness, args []string, spec cubie.Device) {
	type sel struct {
		workload, caseName string
		v                  cubie.Variant
	}
	var sels []sel
	if len(args) == 0 {
		for _, w := range h.Suite.Workloads() {
			sels = append(sels, sel{workload: w.Name(), v: cubie.TC})
		}
	} else {
		s := sel{workload: args[0], v: cubie.TC}
		if len(args) > 1 {
			s.caseName = args[1]
		}
		if len(args) > 2 {
			s.v = cubie.Variant(args[2])
		}
		sels = append(sels, s)
	}

	fmt.Printf("%-10s %-18s %-8s %12s %-9s %14s %s\n",
		"workload", "case", "variant", "work", "metric", "sim("+spec.Name+") s", "bottleneck")
	for _, s := range sels {
		c, res, err := h.RunOne(s.workload, s.caseName, s.v)
		if err != nil {
			fatal(err)
		}
		r := cubie.Simulate(spec, res.Profile)
		fmt.Printf("%-10s %-18s %-8s %12.4e %-9s %14.4e %s\n",
			s.workload, c.Name, s.v, res.Work, res.MetricName, r.Time, r.Bottleneck)
	}
}
