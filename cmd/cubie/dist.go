package main

// The distributed-campaign subcommands. `cubie dist` is the coordinator:
// it enumerates a named plan's run keys, serves them over the work-queue
// API (docs/SERVE.md), forks N `cubie work` workers of this same binary,
// and — once the queue drains — renders the requested output entirely
// from its now-warm cache, byte-identical to the single-process path
// (same renderers, deterministic results, zero executions). `cubie work`
// is the worker loop: lease a key from the coordinator, execute it
// through the local harness, publish the result to the coordinator's
// cache store (the runcache remote tier), complete the lease, repeat
// until the coordinator says done.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/cubie"
	"repro/internal/harness"
	"repro/internal/runcache"
	"repro/internal/server"
	"repro/internal/server/client"
)

// workPollDelay paces a worker's re-poll when everything pending is
// leased out; workErrBudget bounds consecutive coordinator failures (each
// leasing attempt already rides the client's retry policy) before the
// worker gives up — a vanished coordinator must not leave zombies.
const (
	workPollDelay = 100 * time.Millisecond
	workErrBudget = 20
)

// cmdWork runs the worker loop against a coordinator. The harness h
// already has the remote tier attached (main wires CUBIE_REMOTE_CACHE to
// the coordinator before constructing it), so every ExecuteKey first
// consults the local cache, then the coordinator's store, and publishes
// what it had to execute.
func cmdWork(h *cubie.Harness, coordinator, workerID string) {
	if coordinator == "" {
		fatal(fmt.Errorf("work: --coordinator (or CUBIE_COORDINATOR) is required"))
	}
	if workerID == "" {
		host, _ := os.Hostname()
		workerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	cl := client.New(coordinator)
	errs := 0
	for {
		g, err := cl.LeaseWork(workerID)
		if err != nil {
			errs++
			if errs >= workErrBudget {
				fatal(fmt.Errorf("work: coordinator unreachable: %w", err))
			}
			time.Sleep(workPollDelay)
			continue
		}
		errs = 0
		switch g.Status {
		case "wait":
			time.Sleep(workPollDelay)
		case "done":
			return
		case "failed":
			fatal(fmt.Errorf("work: campaign failed: %s", g.Error))
		case "ok":
			k := harness.RunKey{
				Workload: g.Key.Workload,
				Case:     g.Key.Case,
				Variant:  cubie.Variant(g.Key.Variant),
			}
			runErr := h.ExecuteKey(k)
			msg := ""
			if runErr != nil {
				msg = runErr.Error()
				fmt.Fprintf(os.Stderr, "cubie work %s: %v\n", workerID, runErr)
			}
			if _, err := cl.CompleteWork(g.Lease, msg); err != nil {
				// A lost completion is safe: the lease expires and the key
				// is re-issued (the re-execution republishes identical
				// bytes). Count it against the error budget and move on.
				errs++
			}
		default:
			fatal(fmt.Errorf("work: coordinator sent unknown lease state %q", g.Status))
		}
	}
}

// distFlags carries the coordinator-side CLI flags.
type distFlags struct {
	plan          string
	figure        string
	workers       int
	leaseTimeout  time.Duration
	workerMetrics string
}

// cmdDist coordinates one distributed campaign, then renders.
func cmdDist(h *cubie.Harness, f distFlags) {
	if f.workers < 1 {
		fatal(fmt.Errorf("dist: --workers must be >= 1"))
	}
	// The coordinator's cache is the shared store every worker publishes
	// to and renders are assembled from; a cacheless run (CUBIE_CACHE=off)
	// gets an ephemeral one.
	if h.RunCache() == nil {
		dir, err := os.MkdirTemp("", "cubie-dist-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		c, err := runcache.OpenWithFingerprint(dir, runcache.Fingerprint())
		if err != nil {
			fatal(err)
		}
		h.AttachCache(c)
	}

	keys, err := h.PlanByName(f.plan)
	if err != nil {
		fatal(err)
	}
	// Enqueue every key, even locally satisfied ones: workers answer warm
	// keys from the shared store in milliseconds, and a full enumeration
	// is what lets a fresh worker prove a zero-execution warm start.
	q, err := h.NewWorkQueue(keys, f.leaseTimeout)
	if err != nil {
		fatal(err)
	}

	cfg := server.Defaults()
	s, err := server.New(h, cfg)
	if err != nil {
		fatal(err)
	}
	s.SetWorkQueue(q)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	workers, err := forkWorkers(f, url)
	if err != nil {
		cancel()
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cubie dist: plan %q (%d keys) on %d workers via %s\n",
		f.plan, len(keys), f.workers, url)

	// If every worker dies while keys remain, the queue would sit waiting
	// for lease expiries forever; fail fast instead.
	workersDead := make(chan struct{})
	go func() {
		for _, w := range workers {
			_ = w.Wait()
		}
		close(workersDead)
	}()

	waitErr := make(chan error, 1)
	go func() { waitErr <- q.Wait(ctx) }()
	select {
	case err = <-waitErr:
	case <-workersDead:
		if !q.Done() {
			cancel()
			fatal(fmt.Errorf("dist: all %d workers exited with the plan unfinished", f.workers))
		}
		err = <-waitErr
	}
	if err != nil {
		cancel()
		fatal(fmt.Errorf("dist: %w", err))
	}

	// Let the workers observe the terminal queue state and exit cleanly.
	select {
	case <-workersDead:
	case <-time.After(15 * time.Second):
		for _, w := range workers {
			_ = w.Process.Kill()
		}
		<-workersDead
	}
	cancel()
	<-serveDone

	// Assemble the output purely from the warmed cache.
	switch {
	case f.figure != "":
		if err := h.RenderFigure(os.Stdout, f.figure); err != nil {
			fatal(err)
		}
	case f.plan == "all":
		if err := h.RenderAll(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		st := q.Status()
		fmt.Fprintf(os.Stderr, "cubie dist: plan %q complete (%d keys, %d lease re-issues)\n",
			f.plan, st.Completed, st.Reissued)
	}
}

// forkWorkers launches f.workers copies of this binary in `work` mode,
// each with its own empty local cache and the coordinator as remote tier.
func forkWorkers(f distFlags, url string) ([]*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	var cmds []*exec.Cmd
	for i := 1; i <= f.workers; i++ {
		id := fmt.Sprintf("w%d", i)
		wdir, err := os.MkdirTemp("", "cubie-worker-"+id+"-*")
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		args := []string{"work", "--coordinator", url, "--worker-id", id}
		if f.workerMetrics != "" {
			args = append(args, "--metrics", filepath.Join(f.workerMetrics, id+".prom"))
		}
		c := exec.Command(exe, args...)
		c.Env = append(os.Environ(),
			runcache.Env+"="+wdir,
			runcache.EnvRemote+"="+url,
		)
		c.Stdout = os.Stderr
		c.Stderr = os.Stderr
		if err := c.Start(); err != nil {
			return nil, fmt.Errorf("dist: start worker %s: %w", id, err)
		}
		cmds = append(cmds, c)
	}
	return cmds, nil
}
