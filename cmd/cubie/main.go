// Command cubie runs the Cubie benchmark suite and regenerates the paper's
// figures and tables as text.
//
// Usage:
//
//	cubie <command> [flags]
//
// Commands:
//
//	suite      list the ten workloads, their cases and variants (Table 2)
//	specs      print the simulated GPU specifications (Table 5)
//	quadrants  print the four-quadrant utilization categorization (Figure 2)
//	dwarfs     print the Berkeley-dwarf coverage comparison (Table 7)
//	observe    print the nine key observations with Table 1's mapping
//	datasets   print the Table 3 graphs and Table 4 matrices
//	peaks      print the peak-throughput evolution (Figure 12)
//	perf       run the full performance grid (Figure 3)
//	speedup    print variant speedups (Figures 4, 5, 6)
//	edp        print the energy-delay products (Figure 7)
//	power      print the power-trace summaries (Figure 8)
//	error      print the FP64 accuracy table (Table 6)
//	roofline   print the cache-aware roofline (Figure 9)
//	coverage   run the PCA coverage analyses (Figures 10, 11)
//	ablate     run the ablation studies of the model's design choices
//	advise     predict MMU suitability from algorithm-level traits (§4)
//	whatif     the §11 counterfactual: Blackwell with FP64 scaling preserved
//	sweep      bandwidth / tensor-peak provisioning sweeps with knees
//	trace      write a Chrome-trace timeline of the measurement campaign
//	selfbench  time this repo's own compute paths (§6 methodology)
//	explain    resource-level breakdown of one workload/case/variant
//	run        execute workloads through the instrumented harness path
//	tune       calibrate the panel-geometry knobs on this host and persist them
//	serve      long-lived characterization daemon with an HTTP/JSON API
//	fetch      fetch a figure from a running daemon (serve's thin client)
//	dist       coordinate a plan across forked work-stealing workers
//	work       worker loop: lease keys from a coordinator and execute them
//	all        run everything above in paper order (--workers N distributes)
//
// Every command additionally accepts the observability flags --metrics,
// --trace-host, and --pprof (see docs/OBSERVABILITY.md). Flags come before
// positional arguments: cubie run --metrics - SpMV.
//
// Completed workload runs persist in the CUBIE_CACHE-controlled run cache
// (see docs/PERFORMANCE.md, "Incremental runs & the scheduler"): a warm
// `cubie all` re-renders every figure without executing a single workload.
// CUBIE_CACHE=off disables it; any other value selects the cache directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cubie"
	"repro/internal/advisor"
	"repro/internal/harness"
	"repro/internal/measure"
	"repro/internal/runcache"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/tune"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	gpu := fs.String("gpu", "H200", "GPU to simulate for single-device experiments (A100, H200, B200)")
	of := fs.String("of", "tc-vs-baseline", "speedup pair: tc-vs-baseline, cc-vs-tc, cce-vs-tc")
	corpus := fs.Int("corpus", 499, "corpus size for the coverage analysis")
	format := fs.String("format", "text", "output format for perf and error: text, csv, json")
	metricsOut := fs.String("metrics", "", "write a metrics snapshot after the command: Prometheus text, or JSON for *.json paths (\"-\" = stdout)")
	traceHost := fs.String("trace-host", "", "record real host execution spans and write Chrome-trace JSON (\"-\" = stdout)")
	pprofOut := fs.String("pprof", "", "write a CPU profile of the command (inspect with go tool pprof)")
	addr := fs.String("addr", server.Defaults().Addr, "serve: listen address (host:port, port 0 picks a free one); fetch: daemon address")
	addrFile := fs.String("addr-file", "", "serve: write the bound listen address to this file once ready")
	configPath := fs.String("config", "", "serve: JSON config file (overridden by CUBIE_* env vars and flags; see docs/SERVE.md)")
	maxInflight := fs.Int("max-inflight", server.Defaults().MaxInflightRuns, "serve: bound on concurrently admitted run-executing requests")
	coordinator := fs.String("coordinator", os.Getenv("CUBIE_COORDINATOR"), "work: coordinator base URL (default $CUBIE_COORDINATOR)")
	workerID := fs.String("worker-id", "", "work: worker identity reported to the coordinator (default hostname-pid)")
	plan := fs.String("plan", "all", "dist: named run plan to distribute (all, figure3, power, table6, figure9, representative, sweep)")
	figure := fs.String("figure", "", "dist: figure to render from the warmed cache once the plan completes")
	workers := fs.Int("workers", 0, "dist (or all): number of forked workers; 0 runs all in-process")
	leaseTimeout := fs.Duration("lease-timeout", envLeaseTimeout(), "dist: how long a worker may hold a leased key before it is re-issued (default $CUBIE_LEASE_TIMEOUT)")
	workerMetrics := fs.String("worker-metrics", "", "dist: directory for per-worker Prometheus metric snapshots (w1.prom, ...)")
	tuneOut := fs.String("tune-out", "", "tune: output path for the calibrated geometry (default: the per-host cache file)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	// Install the persisted tuned panel geometry, if this host has one
	// (CUBIE_TUNED=off skips, CUBIE_TUNED=<path> overrides the file; see
	// docs/PERFORMANCE.md). Absence is the normal cold state; a corrupt file
	// is reported but never blocks the command — the defaults still compute
	// identical results.
	if _, _, err := tune.LoadAndApply(); err != nil {
		fmt.Fprintln(os.Stderr, "cubie: ignoring tuned geometry:", err)
	}

	// A worker defaults its remote cache tier to the coordinator's store,
	// so results it executes are published where the coordinator (and
	// every peer worker) can reuse them. Set before the harness is built —
	// FromEnv reads it.
	if cmd == "work" && *coordinator != "" && os.Getenv(runcache.EnvRemote) == "" {
		os.Setenv(runcache.EnvRemote, *coordinator)
	}

	spec, err := cubie.DeviceByName(*gpu)
	if err != nil {
		fatal(err)
	}

	obs, err := startObservability(*pprofOut, *traceHost, *metricsOut)
	if err != nil {
		fatal(err)
	}

	// Workload results are deterministic, so completed runs persist across
	// invocations (CUBIE_CACHE selects the directory, "off" disables): a
	// warm `cubie all` re-renders every figure without executing a single
	// workload run.
	h := cubie.NewHarness().AttachCache(runcache.FromEnv())
	switch cmd {
	case "suite":
		mustRender(h, "suite")
	case "specs":
		mustRender(h, "specs")
	case "quadrants":
		mustRender(h, "quadrants")
	case "dwarfs":
		mustRender(h, "dwarfs")
	case "observe":
		mustRender(h, "observe")
	case "datasets":
		mustRender(h, "datasets")
	case "peaks":
		cubie.RenderFigure12(os.Stdout)
	case "perf":
		cells, err := h.Figure3(cubie.Devices())
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "csv":
			err = harness.WritePerfCSV(os.Stdout, cells)
		case "json":
			err = harness.WriteJSON(os.Stdout, cells)
		default:
			cubie.RenderFigure3(os.Stdout, cells)
		}
		if err != nil {
			fatal(err)
		}
	case "speedup":
		cmdSpeedup(h, *of)
	case "edp":
		rows, geo, err := h.Figure7(spec)
		if err != nil {
			fatal(err)
		}
		cubie.RenderFigure7(os.Stdout, rows, geo)
	case "power":
		traces, err := h.Figure8(spec)
		if err != nil {
			fatal(err)
		}
		cubie.RenderFigure8(os.Stdout, traces)
	case "error":
		rows, err := h.Table6()
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "csv": // the artifact's all_error.csv layout
			err = harness.WriteTable6CSV(os.Stdout, rows)
		case "json":
			err = harness.WriteJSON(os.Stdout, rows)
		default:
			cubie.RenderTable6(os.Stdout, rows)
		}
		if err != nil {
			fatal(err)
		}
	case "roofline":
		m, pts, err := h.Figure9(spec)
		if err != nil {
			fatal(err)
		}
		cubie.RenderFigure9(os.Stdout, m, pts)
	case "coverage":
		cmdCoverage(h, *corpus, spec)
	case "ablate":
		cmdAblate(h, spec)
	case "advise":
		cmdAdvise(spec)
	case "trace":
		tl := trace.NewTimeline()
		for _, w := range h.Suite.Workloads() {
			for _, v := range w.Variants() {
				res, err := w.Run(w.Representative(), v)
				if err != nil {
					fatal(err)
				}
				tl.AddKernelLoop(spec, w.Name(), string(v),
					cubie.Simulate(spec, res.Profile), w.Repeats())
			}
		}
		if err := tl.Write(os.Stdout); err != nil {
			fatal(err)
		}
	case "selfbench":
		fmt.Println("Timing this repo's own compute paths (2 warmups, 5 timed runs,")
		fmt.Println("the paper's §6 methodology at reduced counts). These are Go")
		fmt.Println("execution times of the functional MMA layer, NOT simulated GPU times.")
		fmt.Println()
		for _, w := range h.Suite.Workloads() {
			w := w
			c := w.Representative()
			stats, err := measure.Run(func() {
				if _, err := w.Run(c, cubie.TC); err != nil {
					fatal(err)
				}
			}, 2, 5)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-10s %s\n", w.Name(), stats)
		}
	case "sweep":
		if err := h.RenderSweepSection(os.Stdout, spec); err != nil {
			fatal(err)
		}
	case "whatif":
		mustRender(h, "whatif")
	case "explain":
		args := fs.Args()
		if len(args) < 1 {
			fatal(fmt.Errorf("usage: cubie explain <workload> [case] [variant] [--gpu ...]"))
		}
		caseName := ""
		variant := cubie.TC
		if len(args) > 1 {
			caseName = args[1]
		}
		if len(args) > 2 {
			variant = cubie.Variant(args[2])
		}
		if err := h.Explain(os.Stdout, args[0], caseName, variant, spec); err != nil {
			fatal(err)
		}
	case "run":
		cmdRun(h, fs.Args(), spec)
	case "tune":
		cmdTune(*tuneOut)
	case "serve":
		cmdServe(h, serveFlags{
			addr:        *addr,
			addrFile:    *addrFile,
			configPath:  *configPath,
			maxInflight: *maxInflight,
			set:         flagsSet(fs),
		})
	case "fetch":
		cmdFetch(*addr, fs.Args())
	case "work":
		cmdWork(h, *coordinator, *workerID)
	case "dist":
		cmdDist(h, distFlags{
			plan:          *plan,
			figure:        *figure,
			workers:       max(*workers, 1),
			leaseTimeout:  *leaseTimeout,
			workerMetrics: *workerMetrics,
		})
	case "all":
		if *workers > 0 {
			cmdDist(h, distFlags{
				plan:          "all",
				workers:       *workers,
				leaseTimeout:  *leaseTimeout,
				workerMetrics: *workerMetrics,
			})
			break
		}
		if err := h.RenderAll(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err := obs.finish(); err != nil {
		fatal(err)
	}
}

// mustRender renders one figure-catalog entry to stdout (see
// internal/harness/catalog.go — the same renderers back the `cubie serve`
// HTTP API, so CLI and daemon output are identical by construction).
func mustRender(h *cubie.Harness, name string) {
	if err := h.RenderFigure(os.Stdout, name); err != nil {
		fatal(err)
	}
}

func cmdSpeedup(h *cubie.Harness, of string) {
	if err := h.RenderSpeedupPair(os.Stdout, of); err != nil {
		fatal(err)
	}
}

func cmdCoverage(h *cubie.Harness, corpus int, spec cubie.Device) {
	if err := h.RenderCoverageSection(os.Stdout, corpus, spec); err != nil {
		fatal(err)
	}
}

func cmdAblate(h *cubie.Harness, spec cubie.Device) {
	if err := h.RenderAblationSection(os.Stdout, spec); err != nil {
		fatal(err)
	}
}

func cmdAdvise(spec cubie.Device) {
	fmt.Printf("Algorithm-level MMU suitability predictions on %s (Section 4's\n", spec.Name)
	fmt.Println("\"first step toward algorithm level reasoning\", made mechanical)")
	fmt.Printf("\n%-10s %5s %9s %14s %8s\n", "kernel", "quad", "suitable", "speedup band", "redund.")
	for _, tr := range advisor.KnownTraits() {
		v := advisor.Advise(tr, spec)
		fmt.Printf("%-10s %5d %9v %6.2f - %5.2fx %7.1fx\n",
			tr.Name, v.Quadrant, v.Suitable,
			v.ExpectedSpeedupLow, v.ExpectedSpeedupHigh, v.RedundancyFactor)
		for _, r := range v.Reasons {
			fmt.Printf("             - %s\n", r)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cubie <command> [flags]

commands:
  suite | specs | quadrants | dwarfs | observe | datasets | peaks
  perf | speedup [--of tc-vs-baseline|cc-vs-tc|cce-vs-tc]
  edp | power | error | roofline [--gpu A100|H200|B200]
  coverage [--corpus N] | ablate | advise | whatif | sweep | trace | selfbench
  explain <workload> [case] [variant]
  run [<workload> [case] [variant]]
  tune [--tune-out file]
  serve [--addr host:port] [--config file] [--addr-file file] [--max-inflight N]
  fetch [figure] [--addr host:port]
  dist [--plan name] [--workers N] [--figure name] [--lease-timeout d]
       [--worker-metrics dir]
  work --coordinator URL [--worker-id id]
  all [--workers N]

observability flags (any command; flags precede positional args):
  --metrics <file|->     metrics snapshot after the command (Prometheus
                         text; *.json path writes JSON)
  --trace-host <file|->  Chrome-trace JSON of real host execution spans
  --pprof <file>         CPU profile labeled by workload/variant/phase

environment:
  CUBIE_CACHE=<dir|off>  persistent run cache (default: the user cache
                         dir); deterministic results are reused across
                         invocations — a warm "cubie all" executes zero
                         workload runs
  CUBIE_REMOTE_CACHE=<url>  remote cache tier: a peer daemon's store,
                         consulted on local misses, published on puts
  CUBIE_COORDINATOR=<url>   default --coordinator for "cubie work"
  CUBIE_LEASE_TIMEOUT=<dur> default --lease-timeout for "cubie dist"
  CUBIE_TUNED=<path|off>    tuned panel-geometry file loaded at startup
                         (default: the per-host file under the user cache
                         dir, written by "cubie tune"; off skips loading)`)
}

// envLeaseTimeout reads CUBIE_LEASE_TIMEOUT (a Go duration like "2m") as
// the --lease-timeout default.
func envLeaseTimeout() time.Duration {
	if v := os.Getenv("CUBIE_LEASE_TIMEOUT"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return harness.DefaultLeaseTimeout
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cubie:", err)
	os.Exit(1)
}
