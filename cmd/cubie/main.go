// Command cubie runs the Cubie benchmark suite and regenerates the paper's
// figures and tables as text.
//
// Usage:
//
//	cubie <command> [flags]
//
// Commands:
//
//	suite      list the ten workloads, their cases and variants (Table 2)
//	specs      print the simulated GPU specifications (Table 5)
//	quadrants  print the four-quadrant utilization categorization (Figure 2)
//	dwarfs     print the Berkeley-dwarf coverage comparison (Table 7)
//	observe    print the nine key observations with Table 1's mapping
//	datasets   print the Table 3 graphs and Table 4 matrices
//	peaks      print the peak-throughput evolution (Figure 12)
//	perf       run the full performance grid (Figure 3)
//	speedup    print variant speedups (Figures 4, 5, 6)
//	edp        print the energy-delay products (Figure 7)
//	power      print the power-trace summaries (Figure 8)
//	error      print the FP64 accuracy table (Table 6)
//	roofline   print the cache-aware roofline (Figure 9)
//	coverage   run the PCA coverage analyses (Figures 10, 11)
//	ablate     run the ablation studies of the model's design choices
//	advise     predict MMU suitability from algorithm-level traits (§4)
//	whatif     the §11 counterfactual: Blackwell with FP64 scaling preserved
//	sweep      bandwidth / tensor-peak provisioning sweeps with knees
//	trace      write a Chrome-trace timeline of the measurement campaign
//	selfbench  time this repo's own compute paths (§6 methodology)
//	explain    resource-level breakdown of one workload/case/variant
//	run        execute workloads through the instrumented harness path
//	all        run everything above in paper order
//
// Every command additionally accepts the observability flags --metrics,
// --trace-host, and --pprof (see docs/OBSERVABILITY.md). Flags come before
// positional arguments: cubie run --metrics - SpMV.
//
// Completed workload runs persist in the CUBIE_CACHE-controlled run cache
// (see docs/PERFORMANCE.md, "Incremental runs & the scheduler"): a warm
// `cubie all` re-renders every figure without executing a single workload.
// CUBIE_CACHE=off disables it; any other value selects the cache directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cubie"
	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/measure"
	"repro/internal/runcache"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	gpu := fs.String("gpu", "H200", "GPU to simulate for single-device experiments (A100, H200, B200)")
	of := fs.String("of", "tc-vs-baseline", "speedup pair: tc-vs-baseline, cc-vs-tc, cce-vs-tc")
	corpus := fs.Int("corpus", 499, "corpus size for the coverage analysis")
	format := fs.String("format", "text", "output format for perf and error: text, csv, json")
	metricsOut := fs.String("metrics", "", "write a metrics snapshot after the command: Prometheus text, or JSON for *.json paths (\"-\" = stdout)")
	traceHost := fs.String("trace-host", "", "record real host execution spans and write Chrome-trace JSON (\"-\" = stdout)")
	pprofOut := fs.String("pprof", "", "write a CPU profile of the command (inspect with go tool pprof)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	spec, err := cubie.DeviceByName(*gpu)
	if err != nil {
		fatal(err)
	}

	obs, err := startObservability(*pprofOut, *traceHost, *metricsOut)
	if err != nil {
		fatal(err)
	}

	// Workload results are deterministic, so completed runs persist across
	// invocations (CUBIE_CACHE selects the directory, "off" disables): a
	// warm `cubie all` re-renders every figure without executing a single
	// workload run.
	h := cubie.NewHarness().AttachCache(runcache.FromEnv())
	switch cmd {
	case "suite":
		cmdSuite()
	case "specs":
		cmdSpecs()
	case "quadrants":
		cmdQuadrants()
	case "dwarfs":
		cmdDwarfs()
	case "observe":
		cmdObserve()
	case "datasets":
		cmdDatasets()
	case "peaks":
		cubie.RenderFigure12(os.Stdout)
	case "perf":
		cells, err := h.Figure3(cubie.Devices())
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "csv":
			err = harness.WritePerfCSV(os.Stdout, cells)
		case "json":
			err = harness.WriteJSON(os.Stdout, cells)
		default:
			cubie.RenderFigure3(os.Stdout, cells)
		}
		if err != nil {
			fatal(err)
		}
	case "speedup":
		cmdSpeedup(h, *of)
	case "edp":
		rows, geo, err := h.Figure7(spec)
		if err != nil {
			fatal(err)
		}
		cubie.RenderFigure7(os.Stdout, rows, geo)
	case "power":
		traces, err := h.Figure8(spec)
		if err != nil {
			fatal(err)
		}
		cubie.RenderFigure8(os.Stdout, traces)
	case "error":
		rows, err := h.Table6()
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "csv": // the artifact's all_error.csv layout
			err = harness.WriteTable6CSV(os.Stdout, rows)
		case "json":
			err = harness.WriteJSON(os.Stdout, rows)
		default:
			cubie.RenderTable6(os.Stdout, rows)
		}
		if err != nil {
			fatal(err)
		}
	case "roofline":
		m, pts, err := h.Figure9(spec)
		if err != nil {
			fatal(err)
		}
		cubie.RenderFigure9(os.Stdout, m, pts)
	case "coverage":
		cmdCoverage(h, *corpus, spec)
	case "ablate":
		cmdAblate(h, spec)
	case "advise":
		cmdAdvise(spec)
	case "trace":
		tl := trace.NewTimeline()
		for _, w := range h.Suite.Workloads() {
			for _, v := range w.Variants() {
				res, err := w.Run(w.Representative(), v)
				if err != nil {
					fatal(err)
				}
				tl.AddKernelLoop(spec, w.Name(), string(v),
					cubie.Simulate(spec, res.Profile), w.Repeats())
			}
		}
		if err := tl.Write(os.Stdout); err != nil {
			fatal(err)
		}
	case "selfbench":
		fmt.Println("Timing this repo's own compute paths (2 warmups, 5 timed runs,")
		fmt.Println("the paper's §6 methodology at reduced counts). These are Go")
		fmt.Println("execution times of the functional MMA layer, NOT simulated GPU times.")
		fmt.Println()
		for _, w := range h.Suite.Workloads() {
			w := w
			c := w.Representative()
			stats, err := measure.Run(func() {
				if _, err := w.Run(c, cubie.TC); err != nil {
					fatal(err)
				}
			}, 2, 5)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-10s %s\n", w.Name(), stats)
		}
	case "sweep":
		bw, err := h.SweepBandwidth(spec)
		if err != nil {
			fatal(err)
		}
		harness.RenderSweep(os.Stdout,
			"DRAM bandwidth sweep on "+spec.Name+" (TC variants, largest cases)",
			"bandwidth", bw)
		fmt.Println()
		tc, err := h.SweepTensorPeak(spec)
		if err != nil {
			fatal(err)
		}
		harness.RenderSweep(os.Stdout,
			"FP64 tensor-peak sweep on "+spec.Name,
			"tensor peak", tc)
	case "whatif":
		rows, err := h.Counterfactual()
		if err != nil {
			fatal(err)
		}
		harness.RenderCounterfactual(os.Stdout, rows)
	case "explain":
		args := fs.Args()
		if len(args) < 1 {
			fatal(fmt.Errorf("usage: cubie explain <workload> [case] [variant] [--gpu ...]"))
		}
		caseName := ""
		variant := cubie.TC
		if len(args) > 1 {
			caseName = args[1]
		}
		if len(args) > 2 {
			variant = cubie.Variant(args[2])
		}
		if err := h.Explain(os.Stdout, args[0], caseName, variant, spec); err != nil {
			fatal(err)
		}
	case "run":
		cmdRun(h, fs.Args(), spec)
	case "all":
		cmdAll(h)
	default:
		usage()
		os.Exit(2)
	}
	if err := obs.finish(); err != nil {
		fatal(err)
	}
}

func cmdSuite() {
	s := cubie.NewSuite()
	fmt.Println("The Cubie benchmark suite (Table 2)")
	for _, w := range s.Workloads() {
		fmt.Printf("\n%-10s quadrant %d, dwarf: %s\n", w.Name(), w.Quadrant(), w.Dwarf())
		fmt.Print("  cases:   ")
		for i, c := range w.Cases() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(c.Name)
		}
		fmt.Print("\n  variants:")
		for _, v := range w.Variants() {
			fmt.Printf(" %s", v)
		}
		fmt.Printf("\n  figure-7 repeats: %d\n", w.Repeats())
	}
}

func cmdSpecs() {
	fmt.Println("Simulated GPUs (Table 5)")
	fmt.Printf("%-6s %-10s %12s %12s %10s %8s %8s\n",
		"GPU", "arch", "TC FP64(TF)", "CC FP64(TF)", "BW(TB/s)", "mem(GB)", "TDP(W)")
	for _, d := range cubie.Devices() {
		fmt.Printf("%-6s %-10s %12.1f %12.1f %10.2f %8.0f %8.0f\n",
			d.Name, d.Arch, d.TensorFP64, d.CUDAFP64, d.DRAMBWTBs, d.MemoryGB, d.TDPWatts)
	}
}

func cmdQuadrants() {
	s := cubie.NewSuite()
	fmt.Println("MMU utilization quadrants (Section 4, Figure 2)")
	mark := func(full bool) string {
		if full {
			return "full"
		}
		return "partial"
	}
	for _, q := range s.Quadrants() {
		fmt.Printf("\nQuadrant %d — input %s, output %s\n",
			q.Quadrant, mark(q.InputFull), mark(q.OutputFull))
		fmt.Printf("  %s\n  workloads: %v\n", q.Description, q.Workloads)
	}
}

func cmdDwarfs() {
	s := cubie.NewSuite()
	fmt.Println("Berkeley-dwarf coverage (Table 7)")
	fmt.Printf("%-24s %8s %6s %6s\n", "dwarf", "Rodinia", "SHOC", "Cubie")
	for _, r := range s.DwarfCoverage() {
		fmt.Printf("%-24s %8d %6d %6d\n", r.Dwarf, r.Rodinia, r.SHOC, r.Cubie)
	}
	fmt.Printf("\nCubie covers %d dwarfs (Rodinia and SHOC cover 5 each).\n",
		s.DwarfsCovered())
}

func cmdObserve() {
	fmt.Println("The nine key observations")
	for _, o := range cubie.Observations() {
		fmt.Printf("\nO%d (%s): %s\n", o.ID, o.Sections, o.Statement)
	}
	fmt.Println("\nConcern-to-observation mapping (Table 1):")
	for _, r := range core.Table1() {
		aud := ""
		if r.Architecture {
			aud += " Arch"
		}
		if r.Algorithm {
			aud += " Alg"
		}
		if r.Application {
			aud += " App"
		}
		fmt.Printf("  %-26s%-14s O%v\n", r.Concern, aud, r.Observations)
	}
}

func cmdDatasets() {
	fmt.Println("BFS graphs (Table 3; synthesized at reduced scale, see DESIGN.md)")
	fmt.Printf("%-20s %10s %12s %-10s %s\n", "graph", "#vertices", "#edges", "group", "synthesis")
	for _, d := range graph.Table3() {
		fmt.Printf("%-20s %10d %12d %-10s %s\n", d.Name, d.Vertices, d.Edges, d.Group, d.ScaleNote)
	}
	fmt.Println("\nSpMV/SpGEMM matrices (Table 4; synthesized to structural class)")
	fmt.Printf("%-16s %8s %10s %-10s %s\n", "matrix", "#rows", "#nonzeros", "group", "class")
	for _, d := range sparse.Table4() {
		fmt.Printf("%-16s %8d %10d %-10s %s\n", d.Name, d.Rows, d.Nonzeros, d.Group, d.Class)
	}
}

func cmdSpeedup(h *cubie.Harness, of string) {
	var rows []cubie.SpeedupRow
	var err error
	var title string
	switch of {
	case "tc-vs-baseline":
		title = "Figure 4 — speedups of TC over baselines (avg of five cases)"
		rows, err = h.Figure4(cubie.Devices())
	case "cc-vs-tc":
		title = "Figure 5 — speedups of CC over TC"
		rows, err = h.Figure5(cubie.Devices())
	case "cce-vs-tc":
		title = "Figure 6 — speedups of CC-E over TC (Quadrants II–IV)"
		rows, err = h.Figure6(cubie.Devices())
	default:
		fatal(fmt.Errorf("unknown speedup pair %q", of))
	}
	if err != nil {
		fatal(err)
	}
	cubie.RenderSpeedups(os.Stdout, title, rows)
}

func cmdCoverage(h *cubie.Harness, corpus int, spec cubie.Device) {
	gr, err := h.Figure10Graphs(corpus, 1)
	if err != nil {
		fatal(err)
	}
	cubie.RenderCoverage(os.Stdout, "Figure 10a — graph coverage (PCA)", gr)
	mr, err := h.Figure10Matrices(corpus, 2)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	cubie.RenderCoverage(os.Stdout, "Figure 10b — matrix coverage (PCA)", mr)
	pts, disp, err := h.Figure11(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	cubie.RenderFigure11(os.Stdout, pts, disp)
}

func cmdAblate(h *cubie.Harness, spec cubie.Device) {
	var all []harness.AblationRow
	rows, err := h.AblateOverlap(spec)
	if err != nil {
		fatal(err)
	}
	all = append(all, rows...)
	if rows, err = h.AblateConstCache(spec); err != nil {
		fatal(err)
	}
	all = append(all, rows...)
	if rows, err = harness.AblateDASPPadding(); err != nil {
		fatal(err)
	}
	all = append(all, rows...)
	if rows, err = harness.AblateBFSRelabel(); err != nil {
		fatal(err)
	}
	all = append(all, rows...)
	if rows, err = harness.AblateSpGEMMPairing(h); err != nil {
		fatal(err)
	}
	all = append(all, rows...)
	harness.RenderAblations(os.Stdout, all)
}

func cmdAdvise(spec cubie.Device) {
	fmt.Printf("Algorithm-level MMU suitability predictions on %s (Section 4's\n", spec.Name)
	fmt.Println("\"first step toward algorithm level reasoning\", made mechanical)")
	fmt.Printf("\n%-10s %5s %9s %14s %8s\n", "kernel", "quad", "suitable", "speedup band", "redund.")
	for _, tr := range advisor.KnownTraits() {
		v := advisor.Advise(tr, spec)
		fmt.Printf("%-10s %5d %9v %6.2f - %5.2fx %7.1fx\n",
			tr.Name, v.Quadrant, v.Suitable,
			v.ExpectedSpeedupLow, v.ExpectedSpeedupHigh, v.RedundancyFactor)
		for _, r := range v.Reasons {
			fmt.Printf("             - %s\n", r)
		}
	}
}

func cmdAll(h *cubie.Harness) {
	// Plan ahead: enumerate every run the whole campaign needs, deduplicate,
	// and start executing in the background (longest-estimated-first on the
	// worker pool). Figures then render in paper order, each joining the
	// in-flight runs it depends on instead of serially pulling them.
	h.Prefetch(h.PlanAll())
	cmdSuite()
	fmt.Println()
	cmdSpecs()
	fmt.Println()
	cmdQuadrants()
	fmt.Println()
	cells, err := h.Figure3(cubie.Devices())
	if err != nil {
		fatal(err)
	}
	cubie.RenderFigure3(os.Stdout, cells)
	fmt.Println()
	cmdSpeedup(h, "tc-vs-baseline")
	fmt.Println()
	cmdSpeedup(h, "cc-vs-tc")
	fmt.Println()
	cmdSpeedup(h, "cce-vs-tc")
	fmt.Println()
	rows, geo, err := h.Figure7(cubie.H200())
	if err != nil {
		fatal(err)
	}
	cubie.RenderFigure7(os.Stdout, rows, geo)
	fmt.Println()
	traces, err := h.Figure8(cubie.H200())
	if err != nil {
		fatal(err)
	}
	cubie.RenderFigure8(os.Stdout, traces)
	fmt.Println()
	erows, err := h.Table6()
	if err != nil {
		fatal(err)
	}
	cubie.RenderTable6(os.Stdout, erows)
	fmt.Println()
	m, pts, err := h.Figure9(cubie.H200())
	if err != nil {
		fatal(err)
	}
	cubie.RenderFigure9(os.Stdout, m, pts)
	fmt.Println()
	cmdCoverage(h, 199, cubie.H200())
	fmt.Println()
	cfRows, err := h.Counterfactual()
	if err != nil {
		fatal(err)
	}
	harness.RenderCounterfactual(os.Stdout, cfRows)
	fmt.Println()
	cmdAblate(h, cubie.H200())
	fmt.Println()
	cmdDwarfs()
	fmt.Println()
	cubie.RenderFigure12(os.Stdout)
	fmt.Println()
	cmdObserve()
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cubie <command> [flags]

commands:
  suite | specs | quadrants | dwarfs | observe | datasets | peaks
  perf | speedup [--of tc-vs-baseline|cc-vs-tc|cce-vs-tc]
  edp | power | error | roofline [--gpu A100|H200|B200]
  coverage [--corpus N] | ablate | advise | whatif | sweep | trace | selfbench
  explain <workload> [case] [variant]
  run [<workload> [case] [variant]]
  all

observability flags (any command; flags precede positional args):
  --metrics <file|->     metrics snapshot after the command (Prometheus
                         text; *.json path writes JSON)
  --trace-host <file|->  Chrome-trace JSON of real host execution spans
  --pprof <file>         CPU profile labeled by workload/variant/phase

environment:
  CUBIE_CACHE=<dir|off>  persistent run cache (default: the user cache
                         dir); deterministic results are reused across
                         invocations — a warm "cubie all" executes zero
                         workload runs`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cubie:", err)
	os.Exit(1)
}
