package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/cubie"
	"repro/internal/metrics"
)

// TestCmdRun pins the `cubie run` table and the acceptance-criteria metric
// series: after a real run the Prometheus snapshot must contain the par task
// counter, the harness dedup counter, and a per-workload latency histogram.
func TestCmdRun(t *testing.T) {
	h := cubie.NewHarness()
	out := capture(t, func() { cmdRun(h, []string{"Reduction"}, cubie.H200()) })
	for _, want := range []string{"workload", "Reduction", "GElem/s", "sim(H200)"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}

	var buf strings.Builder
	if err := metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.String()
	for _, series := range []string{
		"cubie_par_tasks_total",
		"cubie_harness_runs_deduped_total",
		`cubie_harness_run_seconds_bucket{workload="Reduction"`,
	} {
		if !strings.Contains(snap, series) {
			t.Errorf("metrics snapshot missing %q", series)
		}
	}
	if len(snap) == 0 {
		t.Error("metrics snapshot is empty")
	}
}

// TestCmdRunAllWorkloads checks the no-argument form covers every workload at
// its representative case.
func TestCmdRunAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload")
	}
	h := cubie.NewHarness()
	out := capture(t, func() { cmdRun(h, nil, cubie.A100()) })
	for _, w := range h.Suite.Workloads() {
		if !strings.Contains(out, w.Name()) {
			t.Errorf("run-all output missing workload %q", w.Name())
		}
	}
}

// TestObservabilitySinks drives startObservability/finish exactly as main
// does and checks each sink produced a usable artifact: a non-empty pprof
// profile, valid Chrome-trace JSON, and metric snapshots in both exposition
// formats.
func TestObservabilitySinks(t *testing.T) {
	dir := t.TempDir()
	pprofPath := filepath.Join(dir, "cpu.pprof")
	tracePath := filepath.Join(dir, "host.json")
	promPath := filepath.Join(dir, "metrics.txt")

	obs, err := startObservability(pprofPath, tracePath, promPath)
	if err != nil {
		t.Fatal(err)
	}
	h := cubie.NewHarness()
	if _, _, err := h.RunOne("Scan", "", cubie.TC); err != nil {
		t.Fatal(err)
	}
	if err := obs.finish(); err != nil {
		t.Fatal(err)
	}

	if fi, err := os.Stat(pprofPath); err != nil || fi.Size() == 0 {
		t.Errorf("pprof profile missing or empty: %v", err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Cat  string  `json:"cat"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("host trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("host trace has no events")
	}
	sawRun := false
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" && e.Ph != "M" {
			t.Errorf("unexpected event phase %q", e.Ph)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Errorf("negative timestamp in event %q", e.Name)
		}
		if e.Cat == "harness-run" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Error("host trace missing a harness-run span")
	}

	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "cubie_harness_runs_started_total") {
		t.Error("Prometheus snapshot missing harness counters")
	}

	// The .json suffix must switch the metrics sink to JSON exposition.
	jsonPath := filepath.Join(dir, "metrics.json")
	obs2, err := startObservability("", "", jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs2.finish(); err != nil {
		t.Fatal(err)
	}
	jraw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jraw) {
		t.Error("JSON metrics snapshot is not valid JSON")
	}
	if !strings.Contains(string(jraw), "cubie_par_tasks_total") {
		t.Error("JSON metrics snapshot missing par counters")
	}
}

// TestWriteToStdout checks the "-" path streams to stdout.
func TestWriteToStdout(t *testing.T) {
	out := capture(t, func() {
		if err := writeTo("-", metrics.WritePrometheus); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "# TYPE") {
		t.Errorf("stdout snapshot missing Prometheus framing:\n%.200s", out)
	}
}
