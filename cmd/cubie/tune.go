package main

import (
	"fmt"
	"os"

	"repro/internal/tune"
)

// cmdTune runs the panel-geometry calibration on this host, prints the sweep
// table, and persists the winning geometry where startup loading (and every
// future cubie invocation on this host) will find it.
func cmdTune(out string) {
	fmt.Printf("Calibrating panel geometry for %s (best of timed rounds per candidate;\n", tune.HostFingerprint())
	fmt.Println("every candidate computes bit-identical results — this sweep is performance-only).")
	fmt.Println()
	g, sweeps, err := tune.Calibrate()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-14s %9s %12s %4s\n", "knob", "candidate", "best", "")
	for _, s := range sweeps {
		mark := ""
		if s.Won {
			mark = "  <-- selected"
		}
		fmt.Printf("%-14s %9d %12s%s\n", s.Knob, s.Candidate, s.Best, mark)
	}
	path := out
	if path == "" {
		path = tunedSavePath()
	}
	if err := tune.Save(g, path); err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Printf("saved: %s\n", path)
	fmt.Printf("geometry: spgemm_batch=%d dasp_chunk=%d dmma_block=%d\n",
		g.SpGEMMBatch, g.DASPChunk, g.DMMABlock)
}

// tunedSavePath resolves where `cubie tune` writes: a CUBIE_TUNED path
// override if one is set (off/0 disable loading, not saving), else the
// per-host default file.
func tunedSavePath() string {
	switch v := os.Getenv(tune.EnvVar); v {
	case "", "off", "0":
		p, err := tune.DefaultPath()
		if err != nil {
			fatal(err)
		}
		return p
	default:
		return v
	}
}
