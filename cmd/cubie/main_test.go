package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"repro/cubie"
)

// capture runs f with os.Stdout redirected to a buffer.
func capture(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestCmdSpecs(t *testing.T) {
	out := capture(t, func() { mustRender(cubie.NewHarness(), "specs") })
	for _, want := range []string{"A100", "H200", "B200", "66.9", "40.0", "8.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("specs output missing %q", want)
		}
	}
}

func TestCmdQuadrants(t *testing.T) {
	out := capture(t, func() { mustRender(cubie.NewHarness(), "quadrants") })
	for _, want := range []string{"Quadrant 1", "Quadrant 4", "Scan", "SpGEMM", "partial"} {
		if !strings.Contains(out, want) {
			t.Errorf("quadrants output missing %q", want)
		}
	}
}

func TestCmdDwarfs(t *testing.T) {
	out := capture(t, func() { mustRender(cubie.NewHarness(), "dwarfs") })
	if !strings.Contains(out, "Sparse linear algebra") || !strings.Contains(out, "7 dwarfs") {
		t.Errorf("dwarfs output malformed:\n%s", out)
	}
}

func TestCmdObserve(t *testing.T) {
	out := capture(t, func() { mustRender(cubie.NewHarness(), "observe") })
	if !strings.Contains(out, "O9") || !strings.Contains(out, "Numerical Precision") {
		t.Error("observe output missing observations or Table 1")
	}
}

func TestCmdDatasets(t *testing.T) {
	out := capture(t, func() { mustRender(cubie.NewHarness(), "datasets") })
	for _, want := range []string{"mycielskian17", "conf5_4-8x8-10", "1916928", "100245742"} {
		if !strings.Contains(out, want) {
			t.Errorf("datasets output missing %q", want)
		}
	}
}

func TestCmdSuite(t *testing.T) {
	out := capture(t, func() { mustRender(cubie.NewHarness(), "suite") })
	for _, want := range []string{"GEMM", "PiC", "figure-7 repeats: 6000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
}

func TestCmdAdvise(t *testing.T) {
	out := capture(t, func() { cmdAdvise(cubie.H200()) })
	if !strings.Contains(out, "FFT") || !strings.Contains(out, "false") {
		t.Error("advise output must reject FFT")
	}
	if !strings.Contains(out, "Observation 5") {
		t.Error("advise output missing redundancy reasoning")
	}
}

func TestCmdSpeedupSmall(t *testing.T) {
	h := cubie.NewHarness()
	out := capture(t, func() { cmdSpeedup(h, "cce-vs-tc") })
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "SpMV") {
		t.Error("speedup output malformed")
	}
}
